"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure9" in out
        assert "ycsb F" in out

    def test_experiment_registry_covers_all_figures(self):
        for name in ("table1", "figure1", "figure6", "figure7",
                     "figure8", "figure9"):
            assert name in EXPERIMENTS


class TestExperimentCommand:
    def test_quick_figure1(self, capsys, tmp_path):
        out_file = tmp_path / "fig1.txt"
        assert main(["experiment", "figure1", "--scale", "quick",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Impact of Clock Skew" in out
        assert out_file.exists()
        assert "reject rate" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure42"])


class TestSweepCommand:
    def test_list_prints_sweeps(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out
        assert "nemesis" in out
        assert "selftest" not in out  # hidden test-only sweep

    def test_no_name_is_a_usage_error(self):
        assert main(["sweep"]) == 2

    def test_selftest_sweep_cold_then_warm_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold_out = tmp_path / "cold.json"
        warm_out = tmp_path / "warm.json"
        assert main(["sweep", "selftest", "-j", "1",
                     "--cache-dir", cache_dir,
                     "--out", str(cold_out)]) == 0
        assert "Sweep selftest" in capsys.readouterr().out
        assert main(["sweep", "selftest", "-j", "1",
                     "--cache-dir", cache_dir,
                     "--out", str(warm_out),
                     "--min-hit-rate", "0.9"]) == 0
        assert cold_out.read_bytes() == warm_out.read_bytes()

    def test_min_hit_rate_fails_without_cache(self, tmp_path):
        assert main(["sweep", "selftest", "-j", "1", "--no-cache",
                     "--min-hit-rate", "0.9"]) == 1

    def test_unknown_sweep_is_a_usage_error(self):
        assert main(["sweep", "figure99", "--no-cache"]) == 2


class TestWorkloadCommands:
    def test_retwis_run(self, capsys):
        assert main(["retwis", "--clients", "2", "--keys", "100",
                     "--duration", "0.05", "--backend", "dram",
                     "--replicas", "1"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "latency p99" in out

    def test_retwis_without_local_validation(self, capsys):
        assert main(["retwis", "--clients", "2", "--keys", "100",
                     "--duration", "0.05", "--backend", "dram",
                     "--replicas", "1", "--no-local-validation"]) == 0

    def test_ycsb_run(self, capsys):
        assert main(["ycsb", "--workload", "C", "--clients", "2",
                     "--keys", "100", "--duration", "0.05",
                     "--backend", "dram", "--replicas", "1"]) == 0
        out = capsys.readouterr().out
        assert "YCSB-C" in out
        assert "ops/s" in out

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["retwis", "--backend", "tape"])
