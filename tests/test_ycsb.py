"""Tests for the YCSB workload family."""

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.workloads import YCSB_WORKLOADS, YcsbInstance


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=1, num_clients=1,
                    backend="dram", populate_keys=100, seed=103)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def make_instance(cluster, workload, client_index=0, **kwargs):
    client = cluster.clients[client_index]
    return YcsbInstance(
        cluster.sim, client, cluster.populated_keys,
        cluster.rng.substream(f"ycsb{client_index}"),
        workload=workload, **kwargs)


class TestWorkloadDefinitions:
    def test_all_mixes_sum_to_100(self):
        for name, mix in YCSB_WORKLOADS.items():
            assert sum(weight for _, weight in mix) == \
                pytest.approx(100.0), name

    def test_unknown_workload_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="unknown YCSB workload"):
            make_instance(cluster, "Z")


class TestExecution:
    @pytest.mark.parametrize("workload", sorted(YCSB_WORKLOADS))
    def test_workload_runs_to_completion(self, workload):
        cluster = make_cluster()
        instance = make_instance(cluster, workload)
        cluster.sim.run_until_event(instance.run_operations(40))
        assert instance.stats.operations == 40
        assert instance.stats.committed >= 40  # every op decided

    def test_workload_c_is_pure_read(self):
        cluster = make_cluster()
        instance = make_instance(cluster, "C")
        cluster.sim.run_until_event(instance.run_operations(50))
        assert instance.stats.by_operation == {"read": 50}
        assert instance.stats.inserts == 0

    def test_workload_b_mostly_reads(self):
        cluster = make_cluster()
        instance = make_instance(cluster, "B")
        cluster.sim.run_until_event(instance.run_operations(300))
        reads = instance.stats.by_operation.get("read", 0)
        assert reads / 300 == pytest.approx(0.95, abs=0.06)

    def test_workload_d_inserts_become_readable(self):
        cluster = make_cluster()
        instance = make_instance(cluster, "D")
        cluster.sim.run_until_event(instance.run_operations(200))
        assert instance.stats.inserts > 0
        server = next(iter(cluster.servers.values()))
        inserted = [key for key in server.backend.keys()
                    if ":ins:" in key]
        assert len(inserted) == instance.stats.inserts

    def test_workload_e_scans_multiple_keys(self):
        cluster = make_cluster()
        instance = make_instance(cluster, "E", max_scan_length=5)
        cluster.sim.run_until_event(instance.run_operations(60))
        scans = instance.stats.by_operation.get("scan", 0)
        assert scans > 40

    def test_duration_run_stops(self):
        cluster = make_cluster()
        instance = make_instance(cluster, "A")
        start = cluster.sim.now
        cluster.sim.run_until_event(instance.run(0.05))
        assert cluster.sim.now >= start + 0.05
        assert instance.stats.operations > 0

    def test_rmw_conflicts_under_contention(self):
        cluster = make_cluster(num_clients=6, populate_keys=10)
        instances = [
            make_instance(cluster, "F", client_index=i, alpha=0.99)
            for i in range(6)
        ]
        procs = [instance.run_operations(40) for instance in instances]
        for proc in procs:
            cluster.sim.run_until_event(proc)
        total_aborts = sum(i.stats.aborted for i in instances)
        assert total_aborts > 0, \
            "hot read-modify-write must produce OCC conflicts"

    def test_deterministic_for_seed(self):
        def run_once():
            cluster = make_cluster()
            instance = make_instance(cluster, "A")
            cluster.sim.run_until_event(instance.run_operations(60))
            return (instance.stats.by_operation,
                    instance.stats.committed, instance.stats.aborted)

        assert run_once() == run_once()
