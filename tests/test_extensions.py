"""Tests for the future-work extensions: map cache, client caching,
nearest-replica reads."""

import pytest

from repro.flash import FlashDevice, FlashGeometry
from repro.ftl import MappingCache, MFTLBackend
from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import (
    ABORTED,
    COMMITTED,
    CachingMilanaClient,
    NearestReplicaClient,
)
from repro.sim import Simulator
from repro.versioning import Version


class TestMappingCache:
    def test_hit_and_miss(self):
        cache = MappingCache(capacity=2)
        assert cache.touch("a") is False
        assert cache.touch("a") is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = MappingCache(capacity=2)
        cache.touch("a")
        cache.touch("b")
        cache.touch("a")       # a becomes MRU
        cache.touch("c")       # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MappingCache(0)

    def test_hit_rate(self):
        cache = MappingCache(capacity=10)
        cache.touch("a")
        cache.touch("a")
        cache.touch("a")
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestMFTLWithMapCache:
    def _backend(self, sim, capacity):
        geometry = FlashGeometry(page_size=4096, pages_per_block=8,
                                 num_blocks=32, num_channels=4)
        return MFTLBackend(sim, FlashDevice(sim, geometry),
                           map_cache_capacity=capacity)

    def test_cold_lookup_pays_translation_read(self):
        sim = Simulator()
        backend = self._backend(sim, capacity=4)
        sim.run_until_event(backend.put("k", "v", Version(1.0, 1)))
        assert backend.translation_reads == 1   # cold put
        sim.run_until_event(backend.get("k"))
        assert backend.translation_reads == 1   # now hot

    def test_cold_get_slower_than_hot_get(self):
        sim = Simulator()
        backend = self._backend(sim, capacity=1)
        sim.run_until_event(backend.put("a", 1, Version(1.0, 1)))
        sim.run_until_event(backend.put("b", 2, Version(2.0, 1)))

        def timed_get(key):
            t0 = sim.now
            yield backend.get(key)
            return sim.now - t0

        # "b" is resident (last touched); "a" was evicted by capacity 1.
        hot = sim.run_until_event(sim.process(timed_get("b")))
        cold = sim.run_until_event(sim.process(timed_get("a")))
        assert cold > hot
        assert cold - hot == pytest.approx(
            backend.device.timing.read_page, rel=0.01)

    def test_disabled_by_default(self):
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=8,
                                 num_blocks=32, num_channels=4)
        backend = MFTLBackend(sim, FlashDevice(sim, geometry))
        assert backend.map_cache is None
        sim.run_until_event(backend.put("k", "v", Version(1.0, 1)))
        assert backend.translation_reads == 0


def caching_cluster(**overrides):
    def factory(sim, network, directory, clock, client_id, lv):
        return CachingMilanaClient(
            sim, network, directory, clock, client_id=client_id,
            local_validation=lv)

    defaults = dict(num_shards=1, replicas_per_shard=1, num_clients=2,
                    backend="dram", populate_keys=20, seed=83,
                    client_factory=factory)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestCachingClient:
    def test_hinted_txn_reads_from_cache(self):
        cluster = caching_cluster()
        client = cluster.clients[0]
        sim = cluster.sim

        def work():
            warm = client.begin(read_write_hint=True)
            yield client.txn_get(warm, "key:0")
            yield client.commit(warm)

            sent_before = cluster.network.stats.messages_sent
            txn = client.begin(read_write_hint=True)
            value = yield client.txn_get(txn, "key:0")
            reads_on_wire = (cluster.network.stats.messages_sent
                             - sent_before)
            outcome = yield client.commit(txn)
            return value, reads_on_wire, outcome

        value, reads_on_wire, outcome = sim.run_until_event(
            sim.process(work()))
        assert value == "value-of-key:0"
        assert reads_on_wire == 0, "second read must be a cache hit"
        assert outcome == COMMITTED  # remote validation confirmed it
        assert client.cache_hits == 1

    def test_stale_cache_aborts_then_recovers(self):
        cluster = caching_cluster()
        cacher, writer = cluster.clients
        sim = cluster.sim

        def work():
            # Warm the cache.
            warm = cacher.begin(read_write_hint=True)
            yield cacher.txn_get(warm, "key:1")
            yield cacher.commit(warm)
            # Another client overwrites the key.
            overwrite = writer.begin()
            yield writer.txn_get(overwrite, "key:1")
            writer.put(overwrite, "key:1", "freshened")
            assert (yield writer.commit(overwrite)) == COMMITTED
            yield sim.timeout(1e-3)
            # Cached read is now stale: remote validation must abort.
            stale = cacher.begin(read_write_hint=True)
            value = yield cacher.txn_get(stale, "key:1")
            assert value == "value-of-key:1"   # stale cache served it
            outcome1 = yield cacher.commit(stale)
            # Retry refetches (cache invalidated on abort) and commits.
            retry = cacher.begin(read_write_hint=True)
            value2 = yield cacher.txn_get(retry, "key:1")
            outcome2 = yield cacher.commit(retry)
            return outcome1, outcome2, value2

        outcome1, outcome2, value2 = sim.run_until_event(
            sim.process(work()))
        assert outcome1 == ABORTED
        assert outcome2 == COMMITTED
        assert value2 == "freshened"

    def test_unhinted_txn_bypasses_cache(self):
        cluster = caching_cluster()
        client = cluster.clients[0]
        sim = cluster.sim

        def work():
            warm = client.begin(read_write_hint=True)
            yield client.txn_get(warm, "key:2")
            yield client.commit(warm)
            txn = client.begin()   # no hint: local validation path
            sent_before = cluster.network.stats.messages_sent
            yield client.txn_get(txn, "key:2")
            reads_on_wire = (cluster.network.stats.messages_sent
                             - sent_before)
            outcome = yield client.commit(txn)
            return reads_on_wire, outcome

        reads_on_wire, outcome = sim.run_until_event(sim.process(work()))
        assert reads_on_wire > 0, "unhinted reads must hit the server"
        assert outcome == COMMITTED

    def test_cache_capacity_bounds(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=1,
            backend="dram", populate_keys=30, seed=83,
            client_factory=lambda sim, net, d, clk, cid, lv:
                CachingMilanaClient(sim, net, d, clk, client_id=cid,
                                    cache_capacity=5)))
        client = cluster.clients[0]
        sim = cluster.sim

        def work():
            for i in range(10):
                txn = client.begin(read_write_hint=True)
                yield client.txn_get(txn, f"key:{i}")
                yield client.commit(txn)

        sim.run_until_event(sim.process(work()))
        assert len(client._cache) <= 5


def nearest_cluster(**overrides):
    def factory(sim, network, directory, clock, client_id, lv):
        return NearestReplicaClient(
            sim, network, directory, clock, client_id=client_id,
            local_validation=lv)

    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=1,
                    backend="dram", populate_keys=30, seed=89,
                    client_factory=factory)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestNearestReplicaClient:
    def test_hinted_reads_spread_over_replicas(self):
        cluster = nearest_cluster()
        client = cluster.clients[0]
        sim = cluster.sim

        def work():
            outcomes = []
            for i in range(15):
                txn = client.begin(read_write_hint=True)
                yield client.txn_get(txn, f"key:{i}")
                client.put(txn, f"key:{i}", f"updated-{i}")
                outcomes.append((yield client.commit(txn)))
                yield sim.timeout(1e-3)
            return outcomes

        outcomes = sim.run_until_event(sim.process(work()))
        assert all(outcome == COMMITTED for outcome in outcomes)
        # Backups actually served reads: their get counters moved beyond
        # what replication writes would explain.
        backup_gets = sum(
            cluster.servers[name].backend.stats.gets
            for name in ("srv-0-1", "srv-0-2"))
        assert backup_gets > 0

    def test_hinted_commits_still_serializable(self):
        """A stale backup read must be caught by primary validation."""
        cluster = nearest_cluster(num_clients=2)
        a, b = cluster.clients
        sim = cluster.sim

        def work():
            t1 = a.begin(read_write_hint=True)
            t2 = b.begin(read_write_hint=True)
            yield a.txn_get(t1, "key:3")
            yield b.txn_get(t2, "key:3")
            a.put(t1, "key:3", "from-a")
            b.put(t2, "key:3", "from-b")
            o1 = yield a.commit(t1)
            o2 = yield b.commit(t2)
            return o1, o2

        o1, o2 = sim.run_until_event(sim.process(work()))
        assert (o1, o2).count(COMMITTED) == 1

    def test_unhinted_txns_use_primary(self):
        cluster = nearest_cluster()
        client = cluster.clients[0]
        sim = cluster.sim

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:5")
            return (yield client.commit(txn))

        assert sim.run_until_event(sim.process(work())) == COMMITTED
