"""Tests for SEMEL: sharding, watermarks, replication, and the KV service."""

import pytest

from repro.clocks import PerfectClock
from repro.ftl import DRAMBackend
from repro.net import AppError, FixedLatency, Network, RpcTimeout
from repro.semel import (
    Directory,
    HashRing,
    QuorumError,
    SemelClient,
    ShardInfo,
    StorageServer,
    WatermarkTracker,
)
from repro.sim import SeededRng, Simulator
from repro.wire import SemelGet


class TestHashRing:
    def test_deterministic(self):
        ring1 = HashRing(["a", "b", "c"])
        ring2 = HashRing(["a", "b", "c"])
        keys = [f"key{i}" for i in range(100)]
        assert [ring1.owner_of(k) for k in keys] == \
            [ring2.owner_of(k) for k in keys]

    def test_covers_all_shards_roughly_evenly(self):
        ring = HashRing(["a", "b", "c"], vnodes=128)
        counts = {"a": 0, "b": 0, "c": 0}
        for i in range(3000):
            counts[ring.owner_of(f"key{i}")] += 1
        for shard, count in counts.items():
            assert count > 500, f"shard {shard} got only {count} keys"

    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert ring.owner_of("anything") == "only"

    def test_adding_shard_moves_minority_of_keys(self):
        before = HashRing(["a", "b", "c"], vnodes=128)
        after = HashRing(["a", "b", "c", "d"], vnodes=128)
        keys = [f"key{i}" for i in range(2000)]
        moved = sum(1 for k in keys
                    if before.owner_of(k) != after.owner_of(k))
        assert moved < len(keys) * 0.45

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)


class TestShardInfo:
    def test_primary_and_backups(self):
        shard = ShardInfo("s0", ["n1", "n2", "n3"])
        assert shard.primary == "n1"
        assert shard.backups == ["n2", "n3"]
        assert shard.fault_tolerance == 1

    def test_promote(self):
        shard = ShardInfo("s0", ["n1", "n2", "n3"])
        shard.promote("n3")
        assert shard.primary == "n3"
        assert set(shard.backups) == {"n1", "n2"}

    def test_promote_non_member_rejected(self):
        shard = ShardInfo("s0", ["n1"])
        with pytest.raises(ValueError):
            shard.promote("stranger")

    def test_fault_tolerance_by_size(self):
        assert ShardInfo("s", ["a"]).fault_tolerance == 0
        assert ShardInfo("s", ["a", "b", "c"]).fault_tolerance == 1
        assert ShardInfo("s", list("abcde")).fault_tolerance == 2


class TestWatermarkTracker:
    def test_empty_is_minus_inf(self):
        assert WatermarkTracker().watermark == float("-inf")

    def test_min_over_clients(self):
        tracker = WatermarkTracker()
        tracker.report(1, 10.0)
        tracker.report(2, 5.0)
        assert tracker.watermark == 5.0

    def test_waits_for_expected_clients(self):
        tracker = WatermarkTracker(expected_clients=[1, 2])
        tracker.report(1, 10.0)
        assert tracker.watermark == float("-inf")
        tracker.report(2, 7.0)
        assert tracker.watermark == 7.0

    def test_reports_monotonic_per_client(self):
        tracker = WatermarkTracker()
        tracker.report(1, 10.0)
        tracker.report(1, 3.0)  # stale report ignored
        assert tracker.watermark == 10.0

    def test_forget_unblocks(self):
        tracker = WatermarkTracker(expected_clients=[1, 2])
        tracker.report(1, 10.0)
        tracker.forget(2)
        assert tracker.watermark == 10.0


def build_cluster(num_shards=1, replicas_per_shard=3, num_clients=1,
                  latency=None, seed=7):
    """A minimal SEMEL deployment on DRAM backends with perfect clocks."""
    sim = Simulator()
    rng = SeededRng(seed)
    network = Network(sim, rng, latency=latency or FixedLatency(50e-6))
    shards = {}
    for s in range(num_shards):
        shards[f"shard{s}"] = [f"srv-{s}-{r}" for r in range(replicas_per_shard)]
    directory = Directory(shards)
    servers = {}
    for shard_name, replica_names in shards.items():
        for server_name in replica_names:
            servers[server_name] = StorageServer(
                sim, network, directory, server_name, shard_name,
                DRAMBackend(sim))
    clients = [
        SemelClient(sim, network, directory, PerfectClock(sim),
                    client_id=i)
        for i in range(num_clients)
    ]
    return sim, network, directory, servers, clients


class TestSemelService:
    def test_put_get_roundtrip(self):
        sim, _, _, _, (client,) = build_cluster()
        version = sim.run_until_event(client.put("user:1", {"name": "ada"}))
        result = sim.run_until_event(client.get("user:1"))
        assert result == (version, {"name": "ada"})

    def test_get_missing_key(self):
        sim, _, _, _, (client,) = build_cluster()
        assert sim.run_until_event(client.get("ghost")) is None

    def test_version_carries_client_id(self):
        sim, _, _, _, (client,) = build_cluster()
        version = sim.run_until_event(client.put("k", 1))
        assert version.client_id == client.client_id

    def test_snapshot_read_in_past(self):
        sim, _, _, _, (client,) = build_cluster()
        v1 = sim.run_until_event(client.put("k", "old"))
        sim.run(until=sim.now + 1.0)
        sim.run_until_event(client.put("k", "new"))
        result = sim.run_until_event(
            client.get("k", at=v1.timestamp + 0.5))
        assert result == (v1, "old")

    def test_delete_removes_key(self):
        sim, _, _, _, (client,) = build_cluster()
        sim.run_until_event(client.put("k", 1))
        sim.run_until_event(client.delete("k"))
        assert sim.run_until_event(client.get("k")) is None

    def test_data_reaches_backups(self):
        sim, _, _, servers, (client,) = build_cluster()
        sim.run_until_event(client.put("k", "replicated"))
        sim.run(until=sim.now + 10e-3)  # let laggard replication land
        holders = [name for name, server in servers.items()
                   if server.backend.contains("k")]
        assert len(holders) == 3

    def test_put_survives_one_backup_failure(self):
        sim, network, _, servers, (client,) = build_cluster()
        network.crash("srv-0-2")
        version = sim.run_until_event(client.put("k", "v"))
        assert sim.run_until_event(client.get("k")) == (version, "v")

    def test_put_blocks_without_backup_quorum(self):
        sim, network, _, _, (client,) = build_cluster()
        network.crash("srv-0-1")
        network.crash("srv-0-2")

        def attempt():
            try:
                yield client.put("k", "v")
            except (RpcTimeout, AppError, QuorumError) as exc:
                return type(exc).__name__

        result = sim.run_until_event(sim.process(attempt()))
        assert result in ("RpcTimeout", "AppError")

    def test_stale_write_rejected(self):
        """A client whose clock lags far enough behind sees rejections
        under contention — the §3.3 tradeoff."""
        sim, network, directory, _, _ = build_cluster(num_clients=0)

        class LaggingClock(PerfectClock):
            def _raw_now(self):
                return self.sim.now - 1.0

        leader = SemelClient(sim, network, directory,
                             PerfectClock(sim), client_id=1)
        laggard = SemelClient(sim, network, directory,
                              LaggingClock(sim), client_id=2)
        sim.run(until=2.0)
        sim.run_until_event(leader.put("k", "leader"))

        def lag_put():
            try:
                yield laggard.put("k", "laggard")
            except AppError as exc:
                return f"rejected: {exc}"

        result = sim.run_until_event(sim.process(lag_put()))
        assert result.startswith("rejected")
        assert sim.run_until_event(leader.get("k"))[1] == "leader"

    def test_duplicate_requests_idempotent(self):
        sim = Simulator()
        rng = SeededRng(11)
        network = Network(sim, rng, latency=FixedLatency(50e-6),
                          duplicate_probability=0.8)
        directory = Directory({"shard0": ["srv-0"]})
        server = StorageServer(sim, network, directory, "srv-0", "shard0",
                               DRAMBackend(sim))
        client = SemelClient(sim, network, directory, PerfectClock(sim),
                             client_id=1)
        for i in range(20):
            sim.run_until_event(client.put(f"k{i}", i))
        sim.run(until=sim.now + 5e-3)
        for i in range(20):
            versions = server.backend.versions_of(f"k{i}")
            assert len(versions) == 1, f"k{i} has {len(versions)} versions"

    def test_writes_serialize_in_timestamp_order(self):
        """Concurrent writers with synchronized clocks: the surviving
        latest version is the one with the largest (ts, client) stamp and
        every acknowledged write is present or superseded."""
        sim, _, _, servers, clients = build_cluster(num_clients=4)
        acked = []

        def writer(client, n):
            for i in range(n):
                version = yield client.put("hot", f"{client.client_id}-{i}")
                acked.append(version)
                yield sim.timeout(1e-4)

        procs = [sim.process(writer(c, 10)) for c in clients]
        for proc in procs:
            sim.run_until_event(proc)
        latest = sim.run_until_event(clients[0].get("hot"))
        assert latest[0] == max(acked)

    def test_watermark_broadcast_reaches_backends(self):
        sim, _, _, servers, (client,) = build_cluster()
        sim.run_until_event(client.put("k", 1))
        client.broadcast_watermark()
        sim.run(until=sim.now + 1e-3)
        for server in servers.values():
            assert server.backend.watermark == client.last_acked_timestamp

    def test_watermark_daemon_periodic(self):
        sim, _, _, servers, (client,) = build_cluster()
        client.start_watermark_daemon(interval=0.05)
        sim.run_until_event(client.put("k", 1))
        first = client.last_acked_timestamp
        sim.run(until=sim.now + 0.2)
        for server in servers.values():
            assert server.backend.watermark == first

    def test_multi_shard_routing(self):
        sim, _, directory, servers, (client,) = build_cluster(num_shards=3)
        keys = [f"key{i}" for i in range(30)]
        for key in keys:
            sim.run_until_event(client.put(key, key))
        sim.run(until=sim.now + 10e-3)
        for key in keys:
            shard = directory.shard_of(key)
            primary = servers[shard.primary]
            assert primary.backend.contains(key), \
                f"{key} missing from its shard primary {shard.primary}"
        # Keys actually spread over multiple shards.
        owners = {directory.shard_of(k).name for k in keys}
        assert len(owners) > 1

    def test_non_primary_rejects_client_ops(self):
        sim, network, directory, servers, (client,) = build_cluster()

        def direct_to_backup():
            try:
                yield client.node.call(
                    "srv-0-1", "semel.get", SemelGet(key="k"))
            except AppError as exc:
                return str(exc)

        result = sim.run_until_event(sim.process(direct_to_backup()))
        assert "not the primary" in result
