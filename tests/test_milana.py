"""Tests for the MILANA transaction layer: OCC, 2PC, local validation."""


from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import (
    ABORTED,
    COMMITTED,
    KeyStateTable,
    PREPARED,
    TransactionRecord,
    validate,
)
from repro.net import AppError
from repro.versioning import Version
from repro.wire import MilanaDecide


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=2,
                    backend="dram", clock_preset="perfect", seed=5,
                    populate_keys=16)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def run(cluster, process):
    return cluster.sim.run_until_event(process)


class TestValidationAlgorithm:
    """Algorithm 1 unit tests against a bare key-state table."""

    def _record(self, reads=(), writes=(), ts_commit=10.0, txn="t1"):
        return TransactionRecord(
            txn_id=txn, client_id=1, client_name="c1",
            ts_commit=ts_commit, reads=list(reads), writes=list(writes),
            participants=["shard0"])

    def test_empty_transaction_validates(self):
        table = KeyStateTable()
        assert validate(self._record(), table).ok

    def test_read_of_unchanged_key_validates(self):
        table = KeyStateTable()
        table.mark_committed("k", Version(5.0, 1))
        record = self._record(reads=[("k", (5.0, 1))])
        assert validate(record, table).ok

    def test_read_of_changed_key_aborts(self):
        table = KeyStateTable()
        table.mark_committed("k", Version(7.0, 2))
        record = self._record(reads=[("k", (5.0, 1))])
        result = validate(record, table)
        assert not result.ok
        assert "changed" in result.reason

    def test_read_of_prepared_key_aborts(self):
        table = KeyStateTable()
        table.mark_committed("k", Version(5.0, 1))
        table.mark_prepared("k", "other-txn", 9.0)
        record = self._record(reads=[("k", (5.0, 1))])
        assert not validate(record, table).ok

    def test_missing_key_read_validates_when_still_missing(self):
        table = KeyStateTable()
        record = self._record(reads=[("k", None)])
        assert validate(record, table).ok

    def test_missing_key_read_aborts_when_created(self):
        table = KeyStateTable()
        table.mark_committed("k", Version(5.0, 1))
        record = self._record(reads=[("k", None)])
        assert not validate(record, table).ok

    def test_write_over_prepared_key_aborts(self):
        table = KeyStateTable()
        table.mark_prepared("k", "other-txn", 9.0)
        record = self._record(writes=[("k", "v")])
        assert not validate(record, table).ok

    def test_write_behind_latest_read_aborts(self):
        """The rule enabling local validation: a late-arriving commit
        below an already-served read timestamp must abort."""
        table = KeyStateTable()
        table.observe_read("k", 12.0)
        record = self._record(writes=[("k", "v")], ts_commit=10.0)
        result = validate(record, table)
        assert not result.ok
        assert "read at" in result.reason

    def test_write_behind_latest_committed_aborts(self):
        table = KeyStateTable()
        table.mark_committed("k", Version(11.0, 1))
        record = self._record(writes=[("k", "v")], ts_commit=10.0)
        assert not validate(record, table).ok

    def test_write_ahead_of_everything_validates(self):
        table = KeyStateTable()
        table.mark_committed("k", Version(5.0, 1))
        table.observe_read("k", 6.0)
        record = self._record(reads=[("k", (5.0, 1))],
                              writes=[("k", "v")], ts_commit=10.0)
        assert validate(record, table).ok

    def test_clear_prepared_only_for_owner(self):
        table = KeyStateTable()
        table.mark_prepared("k", "t1", 5.0)
        table.clear_prepared("k", "t2")
        assert table.peek("k").prepared is not None
        table.clear_prepared("k", "t1")
        assert table.peek("k").prepared is None


class TestBasicTransactions:
    def test_read_write_commit_roundtrip(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        key = cluster.populated_keys[0]

        def work():
            txn = client.begin()
            old = yield client.txn_get(txn, key)
            client.put(txn, key, old + "-updated")
            outcome = yield client.commit(txn)
            return outcome, old

        outcome, old = run(cluster, cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert old == f"value-of-{key}"

        def check():
            txn = client.begin()
            value = yield client.txn_get(txn, key)
            yield client.commit(txn)
            return value

        cluster.sim.run(until=cluster.sim.now + 0.01)
        value = run(cluster, cluster.sim.process(check()))
        assert value == old + "-updated"

    def test_read_only_local_commit_has_no_commit_messages(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        key = cluster.populated_keys[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, key)
            sent_before = cluster.network.stats.messages_sent
            outcome = yield client.commit(txn)
            sent_after = cluster.network.stats.messages_sent
            return outcome, sent_after - sent_before

        outcome, messages = run(cluster, cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert messages == 0
        assert client.stats.local_validations == 1

    def test_buffered_writes_invisible_until_commit(self):
        cluster = make_cluster()
        writer, reader = cluster.clients

        def work():
            txn = writer.begin()
            writer.put(txn, "key:0", "dirty")
            own_read = yield writer.txn_get(txn, "key:0")

            other = reader.begin()
            other_read = yield reader.txn_get(other, "key:0")
            yield reader.commit(other)
            writer.abort(txn)
            return own_read, other_read

        own_read, other_read = run(cluster, cluster.sim.process(work()))
        assert own_read == "dirty"           # read-your-writes from buffer
        assert other_read == "value-of-key:0"  # not visible elsewhere

    def test_write_write_conflict_aborts_one(self):
        cluster = make_cluster()
        c1, c2 = cluster.clients

        def work():
            t1 = c1.begin()
            t2 = c2.begin()
            yield c1.txn_get(t1, "key:1")
            yield c2.txn_get(t2, "key:1")
            c1.put(t1, "key:1", "from-c1")
            c2.put(t2, "key:1", "from-c2")
            o1 = yield c1.commit(t1)
            o2 = yield c2.commit(t2)
            return o1, o2

        o1, o2 = run(cluster, cluster.sim.process(work()))
        assert (o1, o2).count(COMMITTED) == 1
        assert (o1, o2).count(ABORTED) == 1

    def test_read_only_sees_consistent_snapshot_across_keys(self):
        """Two keys always updated together: a snapshot read must never
        observe a mixed state."""
        cluster = make_cluster(num_clients=2)
        writer, reader = cluster.clients
        key_a, key_b = "pair:a", "pair:b"

        def seed():
            txn = writer.begin()
            writer.put(txn, key_a, 0)
            writer.put(txn, key_b, 0)
            yield writer.commit(txn)

        run(cluster, cluster.sim.process(seed()))
        observations = []

        def write_loop():
            for i in range(1, 25):
                txn = writer.begin()
                a = yield writer.txn_get(txn, key_a)
                writer.put(txn, key_a, a + 1)
                writer.put(txn, key_b, a + 1)
                yield writer.commit(txn)
                yield cluster.sim.timeout(0.4e-3)

        def read_loop():
            for _ in range(40):
                txn = reader.begin()
                a = yield reader.txn_get(txn, key_a)
                b = yield reader.txn_get(txn, key_b)
                outcome = yield reader.commit(txn)
                if outcome == COMMITTED:
                    observations.append((a, b))
                yield cluster.sim.timeout(0.25e-3)

        wp = cluster.sim.process(write_loop())
        rp = cluster.sim.process(read_loop())
        run(cluster, wp)
        run(cluster, rp)
        assert observations, "no read-only transaction committed"
        for a, b in observations:
            assert a == b, f"torn snapshot: a={a} b={b}"

    def test_multi_shard_transaction_atomic(self):
        cluster = make_cluster(num_shards=3, num_clients=1,
                               populate_keys=60)
        client = cluster.clients[0]
        # Pick keys on distinct shards.
        by_shard = {}
        for key in cluster.populated_keys:
            by_shard.setdefault(
                cluster.directory.shard_of(key).name, key)
        keys = list(by_shard.values())[:3]
        assert len(keys) == 3

        def work():
            txn = client.begin()
            for key in keys:
                yield client.txn_get(txn, key)
            for key in keys:
                client.put(txn, key, "multi")
            outcome = yield client.commit(txn)
            return outcome

        assert run(cluster, cluster.sim.process(work())) == COMMITTED
        cluster.sim.run(until=cluster.sim.now + 0.02)

        def check():
            txn = client.begin()
            values = []
            for key in keys:
                value = yield client.txn_get(txn, key)
                values.append(value)
            yield client.commit(txn)
            return values

        assert run(cluster, cluster.sim.process(check())) == ["multi"] * 3

    def test_abort_discards_buffered_writes(self):
        cluster = make_cluster()
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            client.put(txn, "key:2", "discarded")
            client.abort(txn)
            check = client.begin()
            value = yield client.txn_get(check, "key:2")
            yield client.commit(check)
            return value

        assert run(cluster, cluster.sim.process(work())) == "value-of-key:2"
        assert client.stats.aborted == 1

    def test_remote_validation_mode_for_read_only(self):
        cluster = make_cluster(local_validation=False)
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            sent_before = cluster.network.stats.messages_sent
            outcome = yield client.commit(txn)
            sent_after = cluster.network.stats.messages_sent
            return outcome, sent_after - sent_before

        outcome, messages = run(cluster, cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert messages > 0
        assert client.stats.remote_validations == 1


class TestLocalValidationCorrectness:
    def test_read_only_aborts_when_prepared_version_pending(self):
        """A read that overlaps an in-doubt (prepared) write must fail
        local validation."""
        cluster = make_cluster(num_clients=2, num_shards=2,
                               populate_keys=40)
        writer, reader = cluster.clients
        # A multi-shard txn so the prepared window is wide: crash the
        # writer mid-2PC by never sending decide... simpler: exploit the
        # prepare round trip as the window.
        keys = cluster.populated_keys[:2]
        outcomes = {}

        def writer_work():
            txn = writer.begin()
            for key in keys:
                yield writer.txn_get(txn, key)
            for key in keys:
                writer.put(txn, key, "new")
            outcomes["writer"] = yield writer.commit(txn)

        def reader_work():
            # Begin after the writer's commit timestamp is assigned but
            # while its writes are still prepared.
            yield cluster.sim.timeout(80e-6)
            txn = reader.begin()
            for key in keys:
                yield reader.txn_get(txn, key)
            outcomes["reader"] = yield reader.commit(txn)

        wp = cluster.sim.process(writer_work())
        rp = cluster.sim.process(reader_work())
        run(cluster, wp)
        run(cluster, rp)
        # The reader either saw a clean snapshot (before prepare landed)
        # and committed, or saw a prepared version and aborted; it must
        # never commit having read only part of the writer's update.
        assert outcomes["reader"] in (COMMITTED, ABORTED)
        if outcomes["reader"] == COMMITTED:
            txn_values = []

            def check():
                txn = reader.begin()
                for key in keys:
                    txn_values.append((yield reader.txn_get(txn, key)))
                yield reader.commit(txn)

            run(cluster, cluster.sim.process(check()))


class SerializationChecker:
    """Thin adapter over :mod:`repro.verify.serializability`."""

    def __init__(self):
        self.txns = []

    def record(self, txn_id, reads, writes, ts_commit):
        from repro.verify import TxnEntry
        self.txns.append(TxnEntry(txn_id=txn_id, reads=dict(reads),
                                  writes=dict(writes), ts=ts_commit))

    def is_serializable(self):
        from repro.verify import check_serializability
        return check_serializability(self.txns)


class TestSerializability:
    def test_history_is_serializable_under_contention(self):
        cluster = make_cluster(num_clients=4, populate_keys=8,
                               clock_preset="ptp-sw")
        checker = SerializationChecker()
        hot_keys = cluster.populated_keys[:4]

        def client_loop(client, n):
            rng = cluster.rng.substream(f"wl{client.client_id}")
            for i in range(n):
                txn = client.begin()
                keys = rng.sample(hot_keys, 2)
                observed = {}
                for key in keys:
                    yield client.txn_get(txn, key)
                    obs = txn.reads[key]
                    observed[key] = (tuple(obs.version)
                                     if obs.version else None)
                client.put(txn, keys[0], f"{client.client_id}-{i}")
                outcome = yield client.commit(txn)
                if outcome == COMMITTED:
                    version = (txn.ts_commit, client.client_id)
                    checker.record(
                        txn.txn_id, observed, {keys[0]: version},
                        txn.ts_commit)
                yield cluster.sim.timeout(0.3e-3)

        procs = [cluster.sim.process(client_loop(c, 30))
                 for c in cluster.clients]
        for proc in procs:
            run(cluster, proc)
        ok, witness = checker.is_serializable()
        assert ok, f"serializability violation: {witness}"
        committed = sum(c.stats.committed for c in cluster.clients)
        assert committed > 20


class TestParallelReads:
    def test_get_many_returns_all_values(self):
        cluster = make_cluster(num_shards=2, populate_keys=30)
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            keys = cluster.populated_keys[:6]
            values = yield client.txn_get_many(txn, keys)
            outcome = yield client.commit(txn)
            return values, outcome

        values, outcome = run(cluster, cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert len(values) == 6
        for key, value in values.items():
            assert value == f"value-of-{key}"

    def test_get_many_is_faster_than_sequential(self):
        def elapsed(parallel):
            cluster = make_cluster(populate_keys=30)
            client = cluster.clients[0]
            keys = cluster.populated_keys[:8]

            def work():
                t0 = cluster.sim.now
                txn = client.begin()
                if parallel:
                    yield client.txn_get_many(txn, keys)
                else:
                    for key in keys:
                        yield client.txn_get(txn, key)
                yield client.commit(txn)
                return cluster.sim.now - t0

            return run(cluster, cluster.sim.process(work()))

        assert elapsed(parallel=True) < elapsed(parallel=False) / 3

    def test_get_many_empty(self):
        cluster = make_cluster()
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            values = yield client.txn_get_many(txn, [])
            yield client.commit(txn)
            return values

        assert run(cluster, cluster.sim.process(work())) == {}

    def test_get_many_snapshot_miss_aborts_once(self):
        """On a single-version store, parallel reads hitting rewritten
        keys raise exactly one TransactionAborted."""
        from repro.milana import TransactionAborted
        cluster = make_cluster(backend="sftl", num_clients=2,
                               populate_keys=10)
        writer, reader = cluster.clients

        def work():
            txn = reader.begin()   # early snapshot
            # Another client overwrites several keys after our begin.
            for i in range(3):
                overwrite = writer.begin()
                yield writer.txn_get(overwrite, f"key:{i}")
                writer.put(overwrite, f"key:{i}", "newer")
                yield writer.commit(overwrite)
            yield cluster.sim.timeout(1e-3)
            try:
                yield reader.txn_get_many(
                    txn, [f"key:{i}" for i in range(3)])
            except TransactionAborted:
                reader.abort(txn, "snapshot-miss")
                return "aborted-once"
            yield reader.commit(txn)
            return "committed"

        result = run(cluster, cluster.sim.process(work()))
        cluster.sim.run(until=cluster.sim.now + 0.05)  # no stray failures
        assert result == "aborted-once"


class TestQuorumLossHardening:
    """A lost replication quorum must surface as a protocol outcome.

    Regression tests for the simlint PRO004/ATM002 findings:
    ``QuorumError`` is *not* an ``RpcError``, so before the fixes it
    sailed past every ``except RpcError`` on the handler chain and
    landed in the RPC layer as an opaque handler error — or killed the
    CTP daemon outright — and ``_run_ctp`` applied outcomes without the
    in-flight guard the decide path uses.
    """

    @staticmethod
    def _prepared_record(cluster, txn_id, key, value="ctp-value"):
        record = TransactionRecord(
            txn_id=txn_id, client_id=99, client_name="departed-client",
            ts_commit=cluster.sim.now, reads=[], writes=[(key, value)],
            participants=["shard0"], status=PREPARED,
            prepared_at=cluster.sim.now)
        primary = cluster.servers["srv-0-0"]
        primary.txn_table[txn_id] = record
        primary.key_states.mark_prepared(key, txn_id, record.ts_commit)
        return record

    def test_prepare_without_quorum_aborts_without_handler_error(self):
        cluster = make_cluster(num_clients=1)
        client = cluster.clients[0]
        key = cluster.populated_keys[0]
        primary = cluster.servers["srv-0-0"]
        cluster.network.crash("srv-0-1")
        cluster.network.crash("srv-0-2")

        def work(tag):
            txn = client.begin()
            old = yield client.txn_get(txn, key)
            client.put(txn, key, f"{old}-{tag}")
            outcome = yield client.commit(txn)
            return outcome

        outcome = run(cluster, cluster.sim.process(work("stalled")))
        assert outcome != COMMITTED
        # The regression: the quorum loss used to escape as a generic
        # handler exception instead of an ABORT vote / AppError.
        assert primary.node.handler_errors == 0
        # The abort cleaned up its prepared marks: after the backups
        # heal, the same key commits again.
        cluster.network.recover("srv-0-1")
        cluster.network.recover("srv-0-2")
        cluster.sim.run(until=cluster.sim.now + 0.05)
        outcome = run(cluster, cluster.sim.process(work("healed")))
        assert outcome == COMMITTED
        assert primary.node.handler_errors == 0

    def test_decide_without_quorum_rejects_then_recovers(self):
        cluster = make_cluster(num_clients=2)
        caller = cluster.clients[1]
        key = cluster.populated_keys[0]
        primary = cluster.servers["srv-0-0"]
        self._prepared_record(cluster, "txn-decide-quorum", key)
        cluster.network.crash("srv-0-1")
        cluster.network.crash("srv-0-2")

        def decide():
            try:
                reply = yield caller.node.call(
                    "srv-0-0", "milana.decide",
                    MilanaDecide(txn_id="txn-decide-quorum",
                                 outcome=COMMITTED),
                    timeout=1.0)
            except AppError as exc:
                return "rejected", str(exc)
            return "ok", reply.status

        kind, detail = run(cluster, cluster.sim.process(decide()))
        assert kind == "rejected"
        assert "not quorum-durable" in detail
        assert primary.node.handler_errors == 0
        # A retransmission after the heal sees the recorded status.
        cluster.network.recover("srv-0-1")
        cluster.network.recover("srv-0-2")
        kind, status = run(cluster, cluster.sim.process(decide()))
        assert (kind, status) == ("ok", COMMITTED)

    def test_ctp_daemon_survives_quorum_loss(self):
        cluster = make_cluster(num_clients=1, ctp_timeout=0.05)
        key1, key2 = cluster.populated_keys[:2]
        record1 = self._prepared_record(cluster, "txn-ctp-1", key1)
        cluster.network.crash("srv-0-1")
        cluster.network.crash("srv-0-2")
        # Several CTP rounds run into QuorumError while replicating the
        # resolution; before the fix the first one killed the daemon.
        cluster.sim.run(until=cluster.sim.now + 0.3)
        assert record1.status == COMMITTED  # resolved locally (rule 4)
        cluster.network.recover("srv-0-1")
        cluster.network.recover("srv-0-2")
        # The daemon is still alive: a second orphaned record, injected
        # after the heal, also gets resolved.
        record2 = self._prepared_record(cluster, "txn-ctp-2", key2)
        cluster.sim.run(until=cluster.sim.now + 0.3)
        assert record2.status == COMMITTED
