"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Interrupt,
    Resource,
    SeededRng,
    Simulator,
    Store,
)


class TestSimulatorBasics:
    def test_time_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_timeout_advances_time(self):
        sim = Simulator()
        times = []

        def proc():
            yield sim.timeout(1.0)
            times.append(sim.now)
            yield sim.timeout(0.5)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [1.0, 1.5]

    def test_timeout_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until_advances_time_even_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_does_not_pass_limit(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(10.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert fired == [10.0]

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []

        def make(name):
            def proc():
                yield sim.timeout(1.0)
                order.append(name)
            return proc

        for name in "abc":
            sim.process(make(name)())
        sim.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_return_value_becomes_process_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.value == 42

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_process_can_wait_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return (sim.now, result)

        p = sim.process(parent())
        sim.run()
        assert p.value == (2.0, "child-result")

    def test_exception_in_process_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught boom"

    def test_unwaited_failure_raises_at_sim_level(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.process(proc())
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_yield_non_event_is_an_error(self):
        sim = Simulator()

        def proc():
            yield 42

        p = sim.process(proc())
        with pytest.raises(TypeError, match="must yield Events"):
            sim.run()
        assert p.ok is False

    def test_manual_event_wakes_process(self):
        sim = Simulator()
        gate = sim.event()
        results = []

        def waiter():
            value = yield gate
            results.append((sim.now, value))

        def opener():
            yield sim.timeout(3.0)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert results == [(3.0, "open")]

    def test_yield_already_processed_event_resumes_immediately(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed("early")
        results = []

        def late_waiter():
            yield sim.timeout(5.0)
            value = yield gate
            results.append((sim.now, value))

        sim.process(late_waiter())
        sim.run()
        assert results == [(5.0, "early")]

    def test_interrupt_wakes_process_with_cause(self):
        sim = Simulator()
        outcome = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                outcome.append((sim.now, exc.cause))

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(2.0)
            p.interrupt("wake up")

        sim.process(interrupter())
        sim.run()
        assert outcome == [(2.0, "wake up")]

    def test_interrupt_finished_process_is_error(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()


class TestConditions:
    def test_any_of_fires_on_first(self):
        sim = Simulator()

        def proc():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(5.0, value="slow")
            result = yield sim.any_of([fast, slow])
            return (sim.now, list(result.values()))

        p = sim.process(proc())
        sim.run()
        assert p.value == (1.0, ["fast"])

    def test_all_of_waits_for_every_child(self):
        sim = Simulator()

        def proc():
            events = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
            result = yield sim.all_of(events)
            return (sim.now, sorted(result.values()))

        p = sim.process(proc())
        sim.run()
        assert p.value == (3.0, [1.0, 2.0, 3.0])

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield sim.all_of([])
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        results = []

        def producer():
            yield store.put("a")
            yield sim.timeout(1.0)
            yield store.put("b")

        def consumer():
            for _ in range(2):
                item = yield store.get()
                results.append((sim.now, item))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert results == [(0.0, "a"), (1.0, "b")]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        results = []

        def consumer():
            item = yield store.get()
            results.append((sim.now, item))

        def producer():
            yield sim.timeout(4.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [(4.0, "late")]

    def test_capacity_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("put1", sim.now))
            yield store.put(2)
            log.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put1", 0.0) in log
        assert ("put2", 5.0) in log

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for item in range(5):
            store.put(item)
        got = []

        def consumer():
            while len(got) < 5:
                item = yield store.get()
                got.append(item)

        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def worker(name):
            yield res.acquire()
            log.append((name, "start", sim.now))
            yield sim.timeout(1.0)
            log.append((name, "end", sim.now))
            res.release()

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert log == [
            ("a", "start", 0.0),
            ("a", "end", 1.0),
            ("b", "start", 1.0),
            ("b", "end", 2.0),
        ]

    def test_capacity_allows_parallelism(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        ends = []

        def worker():
            yield res.acquire()
            yield sim.timeout(1.0)
            ends.append(sim.now)
            res.release()

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_release_without_acquire_is_error(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_queued_counter(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=5.0)
        assert res.queued == 1
        assert res.in_use == 1


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(7)
        b = SeededRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(7)
        b = SeededRng(8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_substreams_are_independent_of_draw_order(self):
        root1 = SeededRng(7)
        _ = root1.random()
        sub1 = root1.substream("clock")

        root2 = SeededRng(7)
        sub2 = root2.substream("clock")
        assert [sub1.random() for _ in range(5)] == [sub2.random() for _ in range(5)]

    def test_named_substreams_differ(self):
        root = SeededRng(7)
        a = root.substream("a")
        b = root.substream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
