"""Tests for the comparison baselines: Centiman, single-version FTL,
remote-validation-only clients."""


from repro.baselines import (
    CentimanClient,
    RemoteValidationClient,
    SingleVersionBackend,
    WatermarkBoard,
)
from repro.flash import FlashDevice, FlashGeometry
from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import COMMITTED
from repro.sim import Simulator
from repro.versioning import Version


class TestWatermarkBoard:
    def test_empty_board(self):
        assert WatermarkBoard().watermark == float("-inf")

    def test_min_over_clients(self):
        board = WatermarkBoard()
        board.post(1, 10.0)
        board.post(2, 4.0)
        assert board.watermark == 4.0

    def test_posts_monotonic_per_client(self):
        board = WatermarkBoard()
        board.post(1, 10.0)
        board.post(1, 2.0)
        assert board.watermark == 10.0


class TestSingleVersionBackend:
    def test_is_single_version(self):
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=4,
                                 num_blocks=16, num_channels=2)
        backend = SingleVersionBackend(sim, FlashDevice(sim, geometry))
        assert backend.multi_version is False
        sim.run_until_event(backend.put("k", "a", Version(1.0, 1)))
        sim.run_until_event(backend.put("k", "b", Version(2.0, 1)))
        assert backend.versions_of("k") == [Version(2.0, 1)]
        # Snapshot in the past misses: the old version is gone.
        assert sim.run_until_event(backend.get("k", max_timestamp=1.5)) \
            is None


def centiman_cluster(dissemination_every=5, **overrides):
    board = WatermarkBoard()

    def factory(sim, network, directory, clock, client_id, lv):
        return CentimanClient(
            sim, network, directory, clock, client_id=client_id,
            watermark_board=board,
            dissemination_every=dissemination_every)

    defaults = dict(num_shards=1, replicas_per_shard=1, num_clients=2,
                    backend="dram", populate_keys=50, seed=23,
                    client_factory=factory)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults)), board


class TestCentimanClient:
    def test_old_data_validates_locally(self):
        """Reads of pre-populated (ancient) data pass the watermark check
        and commit with zero network messages."""
        cluster, board = centiman_cluster()
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            sent_before = cluster.network.stats.messages_sent
            outcome = yield client.commit(txn)
            return outcome, \
                cluster.network.stats.messages_sent - sent_before

        outcome, messages = cluster.sim.run_until_event(
            cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert messages == 0
        assert client.local_validation_successes == 1

    def test_fresh_data_falls_back_to_remote_validation(self):
        cluster, board = centiman_cluster(dissemination_every=10_000)
        writer, reader = cluster.clients

        def write():
            txn = writer.begin()
            yield writer.txn_get(txn, "key:1")
            writer.put(txn, "key:1", "hot")
            yield writer.commit(txn)

        cluster.sim.run_until_event(cluster.sim.process(write()))
        cluster.sim.run(until=cluster.sim.now + 0.01)

        def read():
            txn = reader.begin()
            yield reader.txn_get(txn, "key:1")
            sent_before = cluster.network.stats.messages_sent
            outcome = yield reader.commit(txn)
            return outcome, \
                cluster.network.stats.messages_sent - sent_before

        outcome, messages = cluster.sim.run_until_event(
            cluster.sim.process(read()))
        assert outcome == COMMITTED
        assert messages > 0, "fresh read must validate remotely"
        assert reader.local_validation_successes == 0
        assert reader.local_validation_attempts == 1

    def test_dissemination_advances_watermark(self):
        cluster, board = centiman_cluster(dissemination_every=3)
        client = cluster.clients[0]
        start_watermark = board.watermark

        def work():
            for i in range(6):
                txn = client.begin()
                yield client.txn_get(txn, f"key:{i}")
                client.put(txn, f"key:{i}", i)
                yield client.commit(txn)
                yield cluster.sim.timeout(1e-3)

        cluster.sim.run_until_event(cluster.sim.process(work()))
        # The other client never posts beyond its seed, so the watermark
        # is held at that seed even though this client advanced.
        assert board._posted[client.client_id] > start_watermark

    def test_local_validation_fraction_property(self):
        cluster, board = centiman_cluster()
        client = cluster.clients[0]
        assert client.local_validation_fraction == 0.0

    def test_read_write_always_remote(self):
        cluster, board = centiman_cluster()
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:2")
            client.put(txn, "key:2", "new")
            outcome = yield client.commit(txn)
            return outcome

        outcome = cluster.sim.run_until_event(
            cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert client.stats.remote_validations == 1


class TestRemoteValidationClient:
    def test_read_only_validates_remotely(self):
        def factory(sim, network, directory, clock, client_id, lv):
            return RemoteValidationClient(
                sim, network, directory, clock, client_id=client_id)

        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=1,
            backend="dram", populate_keys=10, seed=29,
            client_factory=factory))
        client = cluster.clients[0]
        assert client.local_validation is False

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            sent_before = cluster.network.stats.messages_sent
            outcome = yield client.commit(txn)
            return outcome, \
                cluster.network.stats.messages_sent - sent_before

        outcome, messages = cluster.sim.run_until_event(
            cluster.sim.process(work()))
        assert outcome == COMMITTED
        assert messages > 0
