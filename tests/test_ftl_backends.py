"""Tests for the storage engines: DRAM, GenericFTL, MFTL, VFTL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashDevice, FlashGeometry
from repro.ftl import (
    CapacityError,
    DRAMBackend,
    GenericFTL,
    MFTLBackend,
    PagePacker,
    VFTLBackend,
    retained_versions,
)
from repro.sim import Simulator
from repro.versioning import Version


GEOM = FlashGeometry(page_size=4096, pages_per_block=4, num_blocks=16,
                     num_channels=2)


def run(sim, process, limit=None):
    return sim.run_until_event(process, limit=limit)


def v(ts, client=0):
    return Version(ts, client)


class TestRetainedVersions:
    def test_keeps_all_above_watermark(self):
        versions = [v(5), v(4), v(3)]
        assert retained_versions(versions, 1.0) == versions

    def test_keeps_youngest_at_or_below_watermark(self):
        versions = [v(5), v(4), v(3), v(2)]
        assert retained_versions(versions, 4.0) == [v(5), v(4)]

    def test_watermark_equal_keeps_that_version(self):
        versions = [v(5), v(3)]
        assert retained_versions(versions, 3.0) == [v(5), v(3)]

    def test_everything_below_keeps_only_youngest(self):
        versions = [v(3), v(2), v(1)]
        assert retained_versions(versions, 10.0) == [v(3)]

    def test_empty(self):
        assert retained_versions([], 1.0) == []

    @settings(max_examples=50, deadline=None)
    @given(
        stamps=st.lists(st.floats(min_value=0, max_value=100),
                        min_size=1, max_size=20, unique=True),
        watermark=st.floats(min_value=-1, max_value=101),
    )
    def test_snapshot_reads_at_or_after_watermark_survive(
            self, stamps, watermark):
        """Any snapshot read at ts >= watermark finds the same version
        before and after trimming — the GC safety property of §3.1."""
        versions = [v(ts) for ts in sorted(stamps, reverse=True)]
        kept = retained_versions(versions, watermark)

        def youngest_leq(vs, ts):
            for candidate in vs:
                if candidate.timestamp <= ts:
                    return candidate
            return None

        for snapshot_ts in list(stamps) + [watermark, 100.5]:
            if snapshot_ts < watermark:
                continue
            assert youngest_leq(versions, snapshot_ts) == \
                youngest_leq(kept, snapshot_ts)


class TestPagePacker:
    def test_full_page_flushes_immediately(self):
        sim = Simulator()
        pages = []

        def write_page(records):
            yield sim.timeout(100e-6)
            pages.append(tuple(records))
            return len(pages) - 1

        packer = PagePacker(sim, write_page, records_per_page=4,
                            packing_delay=1e-3)
        events = [packer.submit(i) for i in range(4)]
        sim.run(until=0.5e-3)
        assert pages == [(0, 1, 2, 3)]
        assert [e.value for e in events] == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_deadline_flushes_partial_page(self):
        sim = Simulator()
        pages = []

        def write_page(records):
            yield sim.timeout(100e-6)
            pages.append(tuple(records))
            return len(pages) - 1

        packer = PagePacker(sim, write_page, records_per_page=8,
                            packing_delay=1e-3)
        packer.submit("a")
        packer.submit("b")
        sim.run(until=0.9e-3)
        assert pages == []
        sim.run(until=1.2e-3)
        assert pages == [("a", "b")]

    def test_zero_delay_flushes_each_record(self):
        sim = Simulator()
        pages = []

        def write_page(records):
            yield sim.timeout(1e-6)
            pages.append(tuple(records))
            return len(pages) - 1

        packer = PagePacker(sim, write_page, records_per_page=8,
                            packing_delay=0.0)
        packer.submit("x")
        packer.submit("y")
        sim.run()
        assert pages == [("x",), ("y",)]

    def test_overflow_batches_split(self):
        sim = Simulator()
        pages = []

        def write_page(records):
            yield sim.timeout(1e-6)
            pages.append(tuple(records))
            return len(pages) - 1

        packer = PagePacker(sim, write_page, records_per_page=2,
                            packing_delay=1e-3)
        for i in range(5):
            packer.submit(i)
        sim.run(until=2e-3)
        assert pages == [(0, 1), (2, 3), (4,)]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PagePacker(sim, None, records_per_page=0)
        with pytest.raises(ValueError):
            PagePacker(sim, None, records_per_page=4, packing_delay=-1)


class TestDRAMBackend:
    def test_put_get_roundtrip(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        run(sim, backend.put("k", "v1", v(1.0)))
        result = run(sim, backend.get("k"))
        assert result == (v(1.0), "v1")

    def test_snapshot_get(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        run(sim, backend.put("k", "old", v(1.0)))
        run(sim, backend.put("k", "new", v(2.0)))
        assert run(sim, backend.get("k", max_timestamp=1.5)) == \
            (v(1.0), "old")
        assert run(sim, backend.get("k", max_timestamp=2.5)) == \
            (v(2.0), "new")
        assert run(sim, backend.get("k", max_timestamp=0.5)) is None

    def test_get_missing_key(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        assert run(sim, backend.get("nope")) is None

    def test_versions_sorted_despite_out_of_order_puts(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        run(sim, backend.put("k", "b", v(2.0)))
        run(sim, backend.put("k", "a", v(1.0)))
        run(sim, backend.put("k", "c", v(3.0)))
        assert backend.versions_of("k") == [v(3.0), v(2.0), v(1.0)]

    def test_client_id_breaks_timestamp_ties(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        run(sim, backend.put("k", "from-c1", Version(1.0, 1)))
        run(sim, backend.put("k", "from-c2", Version(1.0, 2)))
        assert run(sim, backend.get("k", max_timestamp=1.0)) == \
            (Version(1.0, 2), "from-c2")

    def test_watermark_trims_on_put(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        for ts in (1.0, 2.0, 3.0):
            run(sim, backend.put("k", f"v{ts}", v(ts)))
        backend.set_watermark(2.5)
        run(sim, backend.put("k", "v4", v(4.0)))
        assert backend.versions_of("k") == [v(4.0), v(3.0), v(2.0)]

    def test_watermark_never_regresses(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        backend.set_watermark(5.0)
        backend.set_watermark(3.0)
        assert backend.watermark == 5.0

    def test_delete_removes_all_versions(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        run(sim, backend.put("k", "a", v(1.0)))
        run(sim, backend.put("k", "b", v(2.0)))
        run(sim, backend.delete("k"))
        assert not backend.contains("k")
        assert run(sim, backend.get("k")) is None

    def test_write_latency_modelled(self):
        sim = Simulator()
        backend = DRAMBackend(sim, write_latency=1e-6, op_cpu=0.0)
        process = backend.put("k", "v", v(1.0))
        sim.run()
        assert backend.stats.mean_put_latency == pytest.approx(1e-6)
        assert process.processed


class TestGenericFTL:
    def _make(self, **kwargs):
        sim = Simulator()
        device = FlashDevice(sim, GEOM)
        ftl = GenericFTL(sim, device, **kwargs)
        return sim, device, ftl

    def test_write_read_roundtrip(self):
        sim, _, ftl = self._make()
        run(sim, ftl.write(0, "payload"))
        assert run(sim, ftl.read(0)) == "payload"

    def test_overwrite_remaps(self):
        sim, device, ftl = self._make()
        run(sim, ftl.write(0, "old"))
        run(sim, ftl.write(0, "new"))
        assert run(sim, ftl.read(0)) == "new"
        assert device.stats.page_writes == 2

    def test_read_unmapped_returns_none(self):
        sim, _, ftl = self._make()
        assert run(sim, ftl.read(5)) is None

    def test_trim_unmaps(self):
        sim, _, ftl = self._make()
        run(sim, ftl.write(3, "x"))
        ftl.trim(3)
        assert not ftl.is_mapped(3)
        assert run(sim, ftl.read(3)) is None

    def test_lba_bounds_enforced(self):
        sim, _, ftl = self._make()
        with pytest.raises(ValueError):
            ftl.write(ftl.usable_lbas, "x")
        with pytest.raises(ValueError):
            ftl.read(-1)

    def test_usable_lbas_reflect_reserve(self):
        sim, _, ftl = self._make(reserve_fraction=0.10)
        assert ftl.usable_lbas == int(GEOM.total_pages * 0.9)

    def test_gc_reclaims_space_under_churn(self):
        """Overwrite a small working set far past raw capacity; GC must
        keep up and data must stay correct."""
        sim, device, ftl = self._make()
        total_writes = GEOM.total_pages * 4
        latest = {}

        def churn():
            for i in range(total_writes):
                lba = i % 8
                latest[lba] = f"value-{i}"
                yield ftl.write(lba, f"value-{i}")

        proc = sim.process(churn())
        sim.run_until_event(proc)
        assert device.stats.block_erases > 0
        assert ftl.gc_runs > 0
        for lba, expected in latest.items():
            assert run(sim, ftl.read(lba)) == expected

    def test_wear_spread_across_blocks(self):
        sim, device, ftl = self._make()
        total_writes = GEOM.total_pages * 6

        def churn():
            for i in range(total_writes):
                yield ftl.write(i % 4, i)

        sim.run_until_event(sim.process(churn()))
        wear = device.chip.wear_counters()
        assert max(wear) > 0
        # Least-worn-first selection keeps wear within a tight band.
        assert max(wear) - min(wear) <= 3

    def test_capacity_error_when_full_of_live_data(self):
        # With no overprovisioning reserve, filling every LBA with live
        # data wedges the device: GC has nothing to reclaim.
        sim, device, ftl = self._make(reserve_fraction=0.0)

        def fill():
            for lba in range(ftl.usable_lbas):
                yield ftl.write(lba, f"live-{lba}")

        with pytest.raises(CapacityError):
            sim.run_until_event(sim.process(fill()))

    def test_reserve_prevents_wedging(self):
        """With the paper's 10 % reserve, a full logical space plus
        rewrite churn keeps making progress (GC always has headroom)."""
        sim, device, ftl = self._make()

        def fill_and_churn():
            for lba in range(ftl.usable_lbas):
                yield ftl.write(lba, f"live-{lba}")
            for i in range(GEOM.total_pages):
                yield ftl.write(i % ftl.usable_lbas, f"rewrite-{i}")

        proc = sim.process(fill_and_churn())
        sim.run_until_event(proc)
        assert proc.ok


def _mftl(sim, multi_version=True, packing_delay=1e-3, geometry=GEOM):
    device = FlashDevice(sim, geometry)
    backend = MFTLBackend(sim, device, packing_delay=packing_delay,
                          multi_version=multi_version)
    return device, backend


class TestMFTLBackend:
    def test_put_get_roundtrip(self):
        sim = Simulator()
        _, backend = _mftl(sim)
        run(sim, backend.put("k", "v1", v(1.0)))
        assert run(sim, backend.get("k")) == (v(1.0), "v1")

    def test_records_packed_eight_per_page(self):
        sim = Simulator()
        device, backend = _mftl(sim)
        assert backend.records_per_page == 8

        def puts():
            waits = [backend.put(f"k{i}", i, v(float(i + 1)))
                     for i in range(8)]
            yield sim.all_of(waits)

        sim.run_until_event(sim.process(puts()))
        assert device.stats.page_writes == 1

    def test_buffer_hit_while_packing(self):
        """A get issued while the record sits in the packer buffer is
        served from DRAM without a device read."""
        sim = Simulator()
        device, backend = _mftl(sim)
        results = {}

        def proc():
            backend.put("k", "fresh", v(1.0))  # don't wait for durability
            result = yield backend.get("k")
            results["value"] = result
            results["reads"] = device.stats.page_reads

        sim.run_until_event(sim.process(proc()))
        assert results["value"] == (v(1.0), "fresh")
        assert results["reads"] == 0

    def test_snapshot_reads(self):
        sim = Simulator()
        _, backend = _mftl(sim)
        run(sim, backend.put("k", "old", v(1.0)))
        run(sim, backend.put("k", "new", v(2.0)))
        assert run(sim, backend.get("k", max_timestamp=1.5)) == \
            (v(1.0), "old")
        assert run(sim, backend.get("k", max_timestamp=0.5)) is None

    def test_single_version_mode_supersedes(self):
        sim = Simulator()
        _, backend = _mftl(sim, multi_version=False)
        run(sim, backend.put("k", "old", v(1.0)))
        run(sim, backend.put("k", "new", v(2.0)))
        # The old snapshot is gone: a read in the past misses.
        assert run(sim, backend.get("k", max_timestamp=1.5)) is None
        assert run(sim, backend.get("k", max_timestamp=2.5)) == \
            (v(2.0), "new")
        assert backend.versions_of("k") == [v(2.0)]

    def test_delete(self):
        sim = Simulator()
        _, backend = _mftl(sim)
        run(sim, backend.put("k", "a", v(1.0)))
        run(sim, backend.delete("k"))
        assert run(sim, backend.get("k")) is None
        assert not backend.contains("k")

    def test_gc_preserves_live_data_under_churn(self):
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=4,
                                 num_blocks=12, num_channels=2)
        device, backend = _mftl(sim, geometry=geometry)
        # capacity = 12*4*8 = 384 records; write 1200 across 10 keys.
        latest = {}

        def churn():
            timestamp = 0.0
            for i in range(1200):
                key = f"k{i % 10}"
                timestamp += 1.0
                latest[key] = (v(timestamp), f"value-{i}")
                yield backend.put(key, f"value-{i}", v(timestamp))
                backend.set_watermark(timestamp - 5.0)

        sim.run_until_event(sim.process(churn()))
        assert backend.stats.gc_runs > 0
        assert backend.stats.records_discarded > 0
        for key, (version, value) in latest.items():
            assert run(sim, backend.get(key)) == (version, value)

    def test_gc_retains_watermark_snapshot(self):
        """After heavy churn, a snapshot read at the watermark must still
        be satisfiable for every key — the §3.1 guarantee."""
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=4,
                                 num_blocks=12, num_channels=2)
        _, backend = _mftl(sim, geometry=geometry)
        watermark = 0.0

        def churn():
            timestamp = 0.0
            for i in range(1000):
                key = f"k{i % 5}"
                timestamp += 1.0
                yield backend.put(key, f"value-{i}", v(timestamp))
                backend.set_watermark(timestamp - 10.0)

        sim.run_until_event(sim.process(churn()))
        watermark = backend.watermark
        for i in range(5):
            result = run(sim, backend.get(f"k{i}", max_timestamp=watermark))
            assert result is not None
            assert result[0].timestamp <= watermark

    def test_mean_latencies_tracked(self):
        sim = Simulator()
        _, backend = _mftl(sim)
        run(sim, backend.put("k", "v", v(1.0)))
        run(sim, backend.get("k"))
        assert backend.stats.mean_put_latency > 0
        assert backend.stats.mean_get_latency > 0


class TestVFTLBackend:
    def _make(self, sim, geometry=GEOM):
        device = FlashDevice(sim, geometry)
        backend = VFTLBackend(sim, device)
        return device, backend

    def test_put_get_roundtrip(self):
        sim = Simulator()
        _, backend = self._make(sim)
        run(sim, backend.put("k", "v1", v(1.0)))
        assert run(sim, backend.get("k")) == (v(1.0), "v1")

    def test_double_reserve_shrinks_usable_space(self):
        sim = Simulator()
        device = FlashDevice(sim, GEOM)
        backend = VFTLBackend(sim, device)
        assert backend.usable_lbas < backend.ftl.usable_lbas
        assert backend.usable_lbas == int(int(GEOM.total_pages * 0.9) * 0.9)

    def test_snapshot_reads(self):
        sim = Simulator()
        _, backend = self._make(sim)
        run(sim, backend.put("k", "old", v(1.0)))
        run(sim, backend.put("k", "new", v(2.0)))
        assert run(sim, backend.get("k", max_timestamp=1.5)) == \
            (v(1.0), "old")

    def test_buffer_hit_while_packing(self):
        sim = Simulator()
        device, backend = self._make(sim)
        results = {}

        def proc():
            backend.put("k", "fresh", v(1.0))
            result = yield backend.get("k")
            results["value"] = result

        sim.run_until_event(sim.process(proc()))
        assert results["value"] == (v(1.0), "fresh")

    def test_delete(self):
        sim = Simulator()
        _, backend = self._make(sim)
        run(sim, backend.put("k", "a", v(1.0)))
        run(sim, backend.delete("k"))
        assert run(sim, backend.get("k")) is None

    def test_gc_preserves_live_data_under_churn(self):
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=4,
                                 num_blocks=16, num_channels=2)
        device, backend = self._make(sim, geometry)
        latest = {}

        def churn():
            timestamp = 0.0
            for i in range(1200):
                key = f"k{i % 10}"
                timestamp += 1.0
                latest[key] = (v(timestamp), f"value-{i}")
                yield backend.put(key, f"value-{i}", v(timestamp))
                backend.set_watermark(timestamp - 5.0)

        sim.run_until_event(sim.process(churn()))
        assert backend.stats.gc_runs > 0
        for key, (version, value) in latest.items():
            assert run(sim, backend.get(key)) == (version, value)

    def test_two_level_gc_both_engage(self):
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=4,
                                 num_blocks=16, num_channels=2)
        device, backend = self._make(sim, geometry)

        def churn():
            timestamp = 0.0
            for i in range(1500):
                timestamp += 1.0
                yield backend.put(f"k{i % 8}", i, v(timestamp))
                backend.set_watermark(timestamp - 3.0)

        sim.run_until_event(sim.process(churn()))
        assert backend.stats.gc_runs > 0          # KV-layer GC
        assert backend.ftl.gc_runs > 0            # FTL-level GC
        assert device.stats.block_erases > 0


class TestBackendEquivalenceProperty:
    """All multi-version engines must agree with a reference model."""

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(min_value=0, max_value=4),   # key index
                st.integers(min_value=0, max_value=30),  # ts index
            ),
            min_size=1, max_size=40,
        ),
        backend_kind=st.sampled_from(["dram", "mftl", "vftl"]),
    )
    def test_matches_reference_model(self, ops, backend_kind):
        sim = Simulator()
        if backend_kind == "dram":
            backend = DRAMBackend(sim)
        elif backend_kind == "mftl":
            device = FlashDevice(sim, GEOM)
            backend = MFTLBackend(sim, device)
        else:
            device = FlashDevice(sim, GEOM)
            backend = VFTLBackend(sim, device)

        model = {}  # key -> {version: value}
        put_seq = 0
        for op, key_index, ts_index in ops:
            key = f"key{key_index}"
            timestamp = float(ts_index)
            if op == "put":
                put_seq += 1
                version = Version(timestamp, put_seq)
                value = f"val{put_seq}"
                run(sim, backend.put(key, value, version))
                model.setdefault(key, {})[version] = value
            elif op == "delete":
                run(sim, backend.delete(key))
                model.pop(key, None)
            else:
                result = run(sim, backend.get(key, max_timestamp=timestamp))
                expected = None
                candidates = [
                    (version, value)
                    for version, value in model.get(key, {}).items()
                    if version.timestamp <= timestamp
                ]
                if candidates:
                    expected = max(candidates, key=lambda pair: pair[0])
                assert result == expected


class TestPackerPlacementProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=60),
        per_page=st.integers(min_value=1, max_value=8),
        delay_us=st.sampled_from([0, 100, 1000]),
    )
    def test_every_record_placed_exactly_once(self, count, per_page,
                                              delay_us):
        """All submitted records land, each exactly once, at in-bounds
        offsets, with submission order preserved within each page."""
        sim = Simulator()
        pages = []

        def write_page(records):
            yield sim.timeout(50e-6)
            pages.append(tuple(records))
            return len(pages) - 1

        packer = PagePacker(sim, write_page, records_per_page=per_page,
                            packing_delay=delay_us * 1e-6)
        events = [packer.submit(i) for i in range(count)]
        sim.run(until=1.0)

        placements = [event.value for event in events]
        # each placement is (page_index, offset), unique and in bounds
        assert len(set(placements)) == count
        for page_index, offset in placements:
            assert 0 <= offset < per_page
            assert pages[page_index][offset] in range(count)
        # flattening pages in order reproduces submission order
        flattened = [record for page in pages for record in page]
        assert flattened == list(range(count))
