"""Stateful property testing of the storage engines.

Hypothesis drives random interleavings of put / get / delete / watermark
operations against each engine and cross-checks every observable against
a reference model that implements the §3.1 semantics directly. This is
the strongest correctness net over the FTL machinery: any divergence in
snapshot reads, version retention, or delete behaviour fails the run
with a minimized command sequence.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.flash import FlashDevice, FlashGeometry
from repro.ftl import DRAMBackend, MFTLBackend, VFTLBackend, \
    retained_versions
from repro.sim import Simulator
from repro.versioning import Version


KEYS = [f"key{i}" for i in range(5)]
GEOM = FlashGeometry(page_size=4096, pages_per_block=8, num_blocks=24,
                     num_channels=4)


class _ReferenceModel:
    """Exact §3.1 semantics: sorted version lists + watermark trimming."""

    def __init__(self):
        self.data = {}  # key -> list[(Version, value)] ascending
        self.watermark = float("-inf")

    def put(self, key, value, version):
        versions = self.data.setdefault(key, [])
        versions.append((version, value))
        versions.sort(key=lambda pair: pair[0])
        self._trim(key)

    def delete(self, key):
        self.data.pop(key, None)

    def set_watermark(self, timestamp):
        self.watermark = max(self.watermark, timestamp)

    def _trim(self, key):
        versions = self.data.get(key, [])
        desc = [version for version, _ in reversed(versions)]
        kept = set(retained_versions(desc, self.watermark))
        self.data[key] = [pair for pair in versions if pair[0] in kept]

    def get(self, key, max_timestamp):
        candidates = [
            pair for pair in self.data.get(key, [])
            if pair[0].timestamp <= max_timestamp
        ]
        return candidates[-1] if candidates else None

    def must_retain(self, key):
        """Versions the engine MUST still hold (the watermark rule);
        engines may trim lazily, so they can hold a superset."""
        versions = self.data.get(key, [])
        desc = [version for version, _ in reversed(versions)]
        return retained_versions(desc, self.watermark)


class BackendMachine(RuleBasedStateMachine):
    backend_kind = "dram"

    @initialize()
    def setup(self):
        self.sim = Simulator()
        if self.backend_kind == "dram":
            self.backend = DRAMBackend(self.sim)
        elif self.backend_kind == "mftl":
            self.backend = MFTLBackend(
                self.sim, FlashDevice(self.sim, GEOM),
                packing_delay=0.1e-3)
        else:
            self.backend = VFTLBackend(
                self.sim, FlashDevice(self.sim, GEOM),
                packing_delay=0.1e-3)
        self.model = _ReferenceModel()
        self.clock = 0.0

    def _run(self, process):
        return self.sim.run_until_event(process)

    def _next_ts(self):
        self.clock += 1.0
        return self.clock

    @rule(key=st.sampled_from(KEYS), client=st.integers(1, 3))
    def put(self, key, client):
        ts = self._next_ts()
        version = Version(ts, client)
        value = f"{key}@{ts}"
        self._run(self.backend.put(key, value, version))
        self.model.put(key, value, version)

    @rule(key=st.sampled_from(KEYS),
          ts_back=st.floats(min_value=0.0, max_value=10.0))
    def get_snapshot(self, key, ts_back):
        at = self.clock - ts_back
        if at < self.model.watermark:
            return  # below the watermark: no availability guarantee
        expected = self.model.get(key, at)
        actual = self._run(self.backend.get(key, max_timestamp=at))
        expected_norm = (expected[0], expected[1]) if expected else None
        assert actual == expected_norm, (
            f"get({key}, {at}): engine {actual} != model "
            f"{expected_norm}")

    @rule(key=st.sampled_from(KEYS))
    def get_latest(self, key):
        expected = self.model.get(key, float("inf"))
        actual = self._run(self.backend.get(key))
        expected_norm = (expected[0], expected[1]) if expected else None
        assert actual == expected_norm

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self._run(self.backend.delete(key))
        self.model.delete(key)

    @precondition(lambda self: self.clock > 0)
    @rule(lag=st.floats(min_value=0.5, max_value=5.0))
    def advance_watermark(self, lag):
        timestamp = self.clock - lag
        self.backend.set_watermark(timestamp)
        self.model.set_watermark(timestamp)

    @rule()
    def let_time_pass(self):
        self.sim.run(until=self.sim.now + 2e-3)

    @invariant()
    def engines_retain_required_versions(self):
        if not hasattr(self, "model"):
            return
        for key in KEYS:
            required = set(self.model.must_retain(key))
            held = set(self.backend.versions_of(key))
            missing = required - held
            assert not missing, (
                f"{key}: engine dropped required versions {missing}")


class TestDRAMStateful(BackendMachine.TestCase):
    settings = settings(max_examples=25, stateful_step_count=30,
                        deadline=None)


BackendMachine.backend_kind = "dram"


class _MFTLMachine(BackendMachine):
    backend_kind = "mftl"


class _VFTLMachine(BackendMachine):
    backend_kind = "vftl"


class TestMFTLStateful(_MFTLMachine.TestCase):
    settings = settings(max_examples=15, stateful_step_count=25,
                        deadline=None)


class TestVFTLStateful(_VFTLMachine.TestCase):
    settings = settings(max_examples=15, stateful_step_count=25,
                        deadline=None)
