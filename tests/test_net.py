"""Tests for the network fabric and RPC layer."""

import pytest

from repro.net import (
    AppError,
    FixedLatency,
    JitteredLatency,
    Network,
    RpcNode,
    RpcTimeout,
)
from repro.sim import SeededRng, Simulator


def make_net(sim, latency=None, **kwargs):
    return Network(sim, SeededRng(7), latency=latency or FixedLatency(50e-6),
                   **kwargs)


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(1e-3)
        assert model.sample(SeededRng(0)) == 1e-3

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_jittered_positive_and_near_base(self):
        model = JitteredLatency(base=50e-6, jitter_fraction=0.2)
        rng = SeededRng(1)
        draws = [model.sample(rng) for _ in range(500)]
        assert all(d > 0 for d in draws)
        mean = sum(draws) / len(draws)
        assert 0.7 * 50e-6 < mean < 1.5 * 50e-6

    def test_jittered_zero_jitter_is_fixed(self):
        model = JitteredLatency(base=50e-6, jitter_fraction=0.0)
        assert model.sample(SeededRng(1)) == 50e-6


class TestNetwork:
    def test_delivery_after_latency(self):
        sim = Simulator()
        net = make_net(sim)
        inbox = net.register("dst")
        net.register("src")
        received = []

        def consumer():
            message = yield inbox.get()
            received.append((sim.now, message))

        sim.process(consumer())
        net.send("src", "dst", "hello")
        sim.run()
        assert received == [(50e-6, "hello")]

    def test_unknown_destination_rejected(self):
        sim = Simulator()
        net = make_net(sim)
        net.register("src")
        with pytest.raises(KeyError):
            net.send("src", "ghost", "x")

    def test_crashed_destination_drops(self):
        sim = Simulator()
        net = make_net(sim)
        inbox = net.register("dst")
        net.register("src")
        net.crash("dst")
        net.send("src", "dst", "lost")
        sim.run()
        assert len(inbox) == 0
        assert net.stats.messages_dropped == 1

    def test_crashed_source_drops(self):
        sim = Simulator()
        net = make_net(sim)
        inbox = net.register("dst")
        net.register("src")
        net.crash("src")
        net.send("src", "dst", "lost")
        sim.run()
        assert len(inbox) == 0

    def test_recover_resumes_delivery(self):
        sim = Simulator()
        net = make_net(sim)
        inbox = net.register("dst")
        net.register("src")
        net.crash("dst")
        net.send("src", "dst", "lost")
        net.recover("dst")
        net.send("src", "dst", "found")
        sim.run()
        assert inbox.items == ("found",)

    def test_crash_during_flight_drops(self):
        sim = Simulator()
        net = make_net(sim, latency=FixedLatency(1e-3))
        inbox = net.register("dst")
        net.register("src")
        net.send("src", "dst", "in-flight")
        sim.run(until=0.5e-3)
        net.crash("dst")
        sim.run()
        assert len(inbox) == 0

    def test_duplicates_injected(self):
        sim = Simulator()
        net = make_net(sim, duplicate_probability=0.5)
        inbox = net.register("dst")
        net.register("src")
        for i in range(100):
            net.send("src", "dst", i)
        sim.run()
        assert len(inbox) > 100
        assert net.stats.messages_duplicated > 10


class TestRpc:
    def _pair(self, sim, latency=None, **net_kwargs):
        net = make_net(sim, latency=latency, **net_kwargs)
        client = RpcNode(sim, net, "client")
        server = RpcNode(sim, net, "server")
        return net, client, server

    def test_call_roundtrip(self):
        sim = Simulator()
        _, client, server = self._pair(sim)

        def echo(payload):
            yield sim.timeout(10e-6)
            return ("echo", payload)

        server.register("echo", echo)
        result = sim.run_until_event(client.call("server", "echo", 42))
        assert result == ("echo", 42)
        # 2 network hops + 10 µs service time.
        assert sim.now == pytest.approx(110e-6)

    def test_concurrent_calls_multiplex(self):
        sim = Simulator()
        _, client, server = self._pair(sim)

        def slow_double(payload):
            yield sim.timeout(payload * 1e-6)
            return payload * 2

        server.register("double", slow_double)

        def caller():
            calls = [client.call("server", "double", n) for n in (5, 1, 3)]
            results = []
            for call in calls:
                value = yield call
                results.append(value)
            return results

        results = sim.run_until_event(sim.process(caller()))
        assert results == [10, 2, 6]

    def test_app_error_propagates(self):
        sim = Simulator()
        _, client, server = self._pair(sim)

        def reject(payload):
            raise AppError("validation failed")
            yield  # pragma: no cover - makes this a generator

        server.register("commit", reject)

        def caller():
            try:
                yield client.call("server", "commit", None)
            except AppError as exc:
                return str(exc)

        result = sim.run_until_event(sim.process(caller()))
        assert result == "validation failed"

    def test_unknown_method_is_app_error(self):
        sim = Simulator()
        _, client, server = self._pair(sim)

        def caller():
            try:
                yield client.call("server", "nope", None)
            except AppError as exc:
                return str(exc)

        result = sim.run_until_event(sim.process(caller()))
        assert "no handler" in result

    def test_timeout_on_crashed_server(self):
        sim = Simulator()
        net, client, server = self._pair(sim)
        net.crash("server")

        def caller():
            try:
                yield client.call("server", "echo", 1, timeout=1e-3)
            except RpcTimeout:
                return ("timed-out", sim.now)

        result = sim.run_until_event(sim.process(caller()))
        assert result == ("timed-out", pytest.approx(1e-3))

    def test_retries_reuse_request_id(self):
        sim = Simulator()
        net, client, server = self._pair(sim)

        def flaky(payload):
            yield sim.timeout(1e-6)
            return "ok"

        server.register("op", flaky)
        net.crash("server")

        def caller():
            try:
                result = yield client.call("server", "op", None,
                                           timeout=1e-3, retries=2)
                return result
            except RpcTimeout:
                return "gave-up"

        def recoverer():
            yield sim.timeout(1.5e-3)
            net.recover("server")

        caller_proc = sim.process(caller())
        sim.process(recoverer())
        result = sim.run_until_event(caller_proc)
        # Recovered before the second retry: the call succeeds.
        assert result == "ok" or result == "gave-up"

    def test_duplicate_requests_served_twice_same_id(self):
        """The RPC layer itself does NOT dedupe — that's the server
        protocol's job (SEMEL §3.3). Duplicates reach the handler."""
        sim = Simulator()
        net = make_net(sim, duplicate_probability=0.999)
        client = RpcNode(sim, net, "client")
        server = RpcNode(sim, net, "server")
        calls = []

        def count(payload):
            calls.append(payload)
            yield sim.timeout(1e-6)
            return len(calls)

        server.register("count", count)
        sim.run_until_event(client.call("server", "count", "x"))
        sim.run()
        assert len(calls) == 2

    def test_notify_is_oneway(self):
        sim = Simulator()
        _, client, server = self._pair(sim)
        received = []

        def sink(payload):
            received.append(payload)
            yield sim.timeout(0)

        server.register("tick", sink)
        client.notify("server", "tick", 99)
        sim.run()
        assert received == [99]

    def test_late_response_after_timeout_is_dropped(self):
        sim = Simulator()
        _, client, server = self._pair(sim, latency=FixedLatency(2e-3))

        def slow(payload):
            yield sim.timeout(5e-3)
            return "late"

        server.register("op", slow)

        def caller():
            try:
                yield client.call("server", "op", None, timeout=1e-3)
            except RpcTimeout:
                return "timed-out"

        result = sim.run_until_event(sim.process(caller()))
        assert result == "timed-out"
        sim.run()  # late response arrives and must be ignored quietly


class TestDeliveryFastPath:
    """The fast-path arrival event and the legacy process chain must
    produce identical message schedules; only host speed may differ."""

    def _run_exchange(self, activate_faults):
        sim = Simulator()
        network = Network(sim, SeededRng(11),
                          latency=JitteredLatency(base=50e-6,
                                                  jitter_fraction=0.3))
        inbox = network.register("rx")
        network.register("tx")
        if activate_faults:
            # A blocked edge between two ghost nodes flips the table to
            # active — forcing every real message down the legacy
            # process chain — without touching tx -> rx traffic.
            network.install_faults().block("ghost-a", "ghost-b")
            assert network.faults.active
        received = []

        def sender():
            for index in range(20):
                network.send("tx", "rx", ("msg", index))
                yield sim.timeout(20e-6)

        def receiver():
            for _ in range(20):
                message = yield inbox.get()
                received.append((repr(sim.now), message))

        sim.process(sender())
        done = sim.process(receiver())
        sim.run_until_event(done, limit=1.0)
        return received, network.stats

    def test_fast_and_slow_paths_deliver_identically(self):
        fast_log, fast_stats = self._run_exchange(activate_faults=False)
        slow_log, slow_stats = self._run_exchange(activate_faults=True)
        assert fast_log == slow_log
        assert fast_stats.messages_delivered == slow_stats.messages_delivered
        assert fast_stats.total_bytes == slow_stats.total_bytes

    def test_fast_path_drops_on_crash_during_flight(self):
        sim = Simulator()
        network = make_net(sim, latency=FixedLatency(1e-3))
        network.register("rx")
        network.register("tx")
        network.send("tx", "rx", "doomed")
        network.crash("rx")
        sim.run()
        assert network.stats.messages_dropped == 1
        assert network.stats.messages_delivered == 0

    def test_fast_path_buffers_when_no_getter_waits(self):
        sim = Simulator()
        network = make_net(sim, latency=FixedLatency(1e-3))
        inbox = network.register("rx")
        network.register("tx")
        network.send("tx", "rx", "early")
        sim.run()
        assert inbox.items == ("early",)
        assert network.stats.messages_delivered == 1

    def test_total_bytes_tracks_per_edge_sum(self):
        sim = Simulator()
        network = make_net(sim)
        network.register("rx")
        network.register("tx")
        for index in range(5):
            network.send("tx", "rx", ("payload", index))
        sim.run()
        assert network.stats.total_bytes == \
            sum(network.stats.bytes_by_edge.values())
        assert network.stats.total_bytes > 0
