"""Unit tests for the sansim happens-before sanitizer.

End-to-end exploration (the seeded CTP-race fixture, reconciliation,
CLI) lives in ``test_sansim_explorer.py``; schedule-equivalence against
the golden fingerprints lives in ``test_sansim_fingerprints.py``. This
file covers the runtime pieces in isolation: vector-clock joins, the
SAN001/SAN002 checks, lock suppression, the courier seam, tie-break
policies, witness identity, and the traced kernel's lockstep behaviour.
"""

import pytest

from repro.sansim import (
    FifoTieBreak,
    RandomTieBreak,
    SanitizerRuntime,
    TargetedTieBreak,
    TracedSimulator,
    TrialSpec,
    Witness,
)
from repro.sansim.explorer import parse_replay_spec
from repro.sansim.policies import make_policy
from repro.sansim.runtime import _join
from repro.sansim.witnesses import Site, canonical_location
from repro.sim.core import Simulator

LOC = ("txn", "srv-a", "t1")
LOCK = ("inflight", "srv-a", "t1")


class TestClockJoin:
    def test_join_empty_returns_base(self):
        base = {1: 3}
        assert _join(base, {}) is base

    def test_join_covered_returns_base(self):
        base = {1: 3, 2: 5}
        assert _join(base, {1: 2, 2: 5}) is base

    def test_join_merges_pointwise_max(self):
        base = {1: 3, 2: 1}
        other = {2: 4, 3: 7}
        merged = _join(base, other)
        assert merged == {1: 3, 2: 4, 3: 7}
        assert base == {1: 3, 2: 1}  # immutability: fresh dict


class _Proc:
    """Stand-in process object for driving the runtime hooks directly."""


def _resume(rt, proc):
    return rt.begin_resume(proc)


class TestRuntimeChecks:
    def _race(self, reader_lock=False, writer_lock=False,
              ordered=False, exclusive=False, relaxed=False):
        """Check-suspend-write with a foreign write in the window."""
        rt = SanitizerRuntime()
        reader, writer = _Proc(), _Proc()

        ctx_r = _resume(rt, reader)
        rt.begin_section("ctp")
        rt.on_read(LOC)
        rt.end_resume(ctx_r, 0, 0)

        ctx_w = _resume(rt, writer)
        rt.begin_section("decide")
        if writer_lock:
            rt.on_acquire(LOCK)
        rt.on_write(LOC, relaxed=relaxed)
        if writer_lock:
            rt.on_release(LOCK)
        # Attribute heap seq 7 to the writer's clock so an "ordered"
        # reader can resume under it (a message handoff).
        rt.end_resume(ctx_w, 7, 8)

        if ordered:
            rt.on_pop(7, object())
        ctx_r2 = _resume(rt, reader)
        if reader_lock:
            rt.on_acquire(LOCK)
        rt.on_write(LOC, exclusive=exclusive)
        rt.end_resume(ctx_r2, 0, 0)
        return rt

    def test_stale_guard_and_unordered_write(self):
        rt = self._race()
        rules = sorted(w.rule_id for w in rt.witnesses)
        assert rules == ["SAN001", "SAN002"]
        san1 = next(w for w in rt.witnesses if w.rule_id == "SAN001")
        assert san1.location == "txn@srv-a"
        assert "stale-guard" in san1.message
        assert canonical_location(LOC) in rt.flagged_locations

    def test_common_lock_suppresses_both(self):
        rt = self._race(reader_lock=True, writer_lock=True)
        assert rt.witnesses == []

    def test_writer_only_lock_does_not_suppress(self):
        rt = self._race(writer_lock=True)
        assert sorted(w.rule_id for w in rt.witnesses) == \
            ["SAN001", "SAN002"]

    def test_ordered_write_no_san002(self):
        # The second writer resumed under the first writer's clock: the
        # writes are ordered, but the guard is still stale (it was never
        # re-read after the suspension) so SAN001 stands.
        rt = self._race(ordered=True)
        assert [w.rule_id for w in rt.witnesses] == ["SAN001"]

    def test_reread_refreshes_guard(self):
        rt = SanitizerRuntime()
        reader, writer = _Proc(), _Proc()
        ctx_r = _resume(rt, reader)
        rt.begin_section("ctp")
        rt.on_read(LOC)
        rt.end_resume(ctx_r, 0, 0)
        ctx_w = _resume(rt, writer)
        rt.on_write(LOC)
        rt.end_resume(ctx_w, 7, 8)
        rt.on_pop(7, object())  # handoff: reader is ordered after writer
        ctx_r2 = _resume(rt, reader)
        rt.on_read(LOC)  # the re-check the fixed CTP performs
        rt.on_write(LOC)
        rt.end_resume(ctx_r2, 0, 0)
        assert rt.witnesses == []

    def test_relaxed_writes_never_flagged(self):
        rt = self._race(relaxed=False)  # acting write still checks...
        assert rt.witnesses != []
        rt2 = SanitizerRuntime()
        a, b = _Proc(), _Proc()
        ctx_a = _resume(rt2, a)
        rt2.on_write(LOC, relaxed=True)
        rt2.end_resume(ctx_a, 0, 0)
        ctx_b = _resume(rt2, b)
        rt2.on_write(LOC, relaxed=True)
        rt2.end_resume(ctx_b, 0, 0)
        assert rt2.witnesses == []

    def test_exclusive_reports_single_apply(self):
        rt = self._race(exclusive=True)
        san2 = next(w for w in rt.witnesses if w.rule_id == "SAN002")
        assert "single-apply invariant violated" in san2.message

    def test_same_context_rewrites_not_flagged(self):
        rt = SanitizerRuntime()
        p = _Proc()
        ctx = _resume(rt, p)
        rt.begin_section("put")
        rt.on_read(LOC)
        rt.on_write(LOC)
        rt.on_write(LOC)
        rt.end_resume(ctx, 0, 0)
        assert rt.witnesses == []

    def test_courier_adopts_message_clock(self):
        rt = SanitizerRuntime()
        writer, courier = _Proc(), _Proc()
        ctx_w = _resume(rt, writer)
        rt.on_write(LOC)
        writer_clock = ctx_w.clock
        rt.end_resume(ctx_w, 7, 8)
        rt.on_pop(7, object())  # delivery fires under the sender clock
        message = object()
        rt.tag_payload(message)
        ctx_c = _resume(rt, courier)
        ctx_c.clock = {99: 5}  # accumulated garbage from earlier routing
        rt.adopt_payload(message)
        assert ctx_c.clock == writer_clock

    def test_adopt_without_tag_falls_back_to_ambient(self):
        rt = SanitizerRuntime()
        courier = _Proc()
        ctx = _resume(rt, courier)
        ctx.clock = {99: 5}
        rt.adopt_payload(object())
        assert ctx.clock == {}

    def test_stats_shape(self):
        rt = self._race()
        stats = rt.stats()
        assert stats["tracked_reads"] == 1
        assert stats["tracked_writes"] == 2
        assert stats["witnesses"] == 2
        assert stats["locations"] == 1


class TestPolicies:
    def test_fifo_always_first(self):
        policy = FifoTieBreak()
        assert policy.choose([(0.0, 1, None), (0.0, 2, None)]) == 0

    def test_random_is_seed_deterministic(self):
        tied = [(0.0, seq, None) for seq in range(5)]
        a = [RandomTieBreak(3).choose(tied) for _ in range(20)]
        b = [RandomTieBreak(3).choose(tied) for _ in range(20)]
        c = [RandomTieBreak(4).choose(tied) for _ in range(20)]
        assert a == b
        assert a != c
        assert all(0 <= i < 5 for i in a)

    def test_targeted_prefers_hot_seqs(self):
        rt = SanitizerRuntime()
        rt.hot_seqs.update({11, 12})
        policy = TargetedTieBreak(1, rt, bias=1.0)
        tied = [(0.0, 10, None), (0.0, 11, None), (0.0, 12, None)]
        picks = {policy.choose(tied) for _ in range(30)}
        assert picks <= {1, 2}

    def test_make_policy_validates(self):
        assert make_policy("fifo", 0).name == "fifo"
        assert make_policy("random", 1).name == "random"
        with pytest.raises(ValueError, match="needs the trial's tracer"):
            make_policy("targeted", 1)
        with pytest.raises(ValueError, match="unknown tie-break"):
            make_policy("bogus", 0)


class TestWitnessIdentity:
    def _witness(self, line=10, rule_id="SAN001"):
        return Witness(
            rule_id=rule_id, location="txn@srv-a",
            message="stale-guard write on txn@srv-a",
            acting=Site(path="a.py", line=line, function="apply"),
            prior=Site(path="b.py", line=5, function="check"))

    def test_fingerprint_is_line_free(self):
        assert self._witness(line=10).fingerprint == \
            self._witness(line=99).fingerprint

    def test_fingerprint_distinguishes_rules(self):
        assert self._witness().fingerprint != \
            self._witness(rule_id="SAN002").fingerprint

    def test_stamp_and_replay_command(self):
        w = self._witness().stamped("ctp-race", 3, "random", 7)
        assert w.workload == "ctp-race"
        assert w.replay_command == \
            "python -m repro sansim ctp-race --replay ctp-race:3:random:7"

    def test_to_json_shape(self):
        w = self._witness().stamped("ctp-race", 0, "fifo", 0)
        payload = w.to_json()
        assert payload["rule"] == "SAN001"
        assert payload["replay"]["command"] == w.replay_command
        assert payload["replay"]["trial"] == 0
        assert payload["acting"]["function"] == "apply"
        assert payload["fingerprint"] == w.fingerprint

    def test_canonical_location(self):
        assert canonical_location(("txn", "srv-a", "t1")) == "txn@srv-a"
        assert canonical_location(("dlock", "alpha")) == "dlock@alpha"


class TestTrialSpec:
    def test_render_parse_roundtrip(self):
        spec = TrialSpec(workload="ctp-race", trial=4, policy="random",
                         seed=9)
        assert parse_replay_spec(spec.render()) == spec
        assert spec.policy_seed == 9 * 10_000 + 4

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="bad replay spec"):
            parse_replay_spec("ctp-race:0:fifo")
        with pytest.raises(ValueError, match="unknown workload"):
            parse_replay_spec("nope:0:fifo:0")


def _run_schedule(sim):
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append((name, sim.now))

    delays = [0.003, 0.001, 0.001, 0.002, 0.001, 0.002]
    for index, delay in enumerate(delays):
        sim.process(proc(f"p{index}", delay))
    sim.run()
    return order


class TestTracedKernel:
    def test_fifo_is_lockstep_with_plain_kernel(self):
        plain_sim = Simulator()
        plain = _run_schedule(plain_sim)
        traced_sim = TracedSimulator(tracer=SanitizerRuntime(),
                                     tie_break=FifoTieBreak())
        traced = _run_schedule(traced_sim)
        assert traced == plain
        assert traced_sim.events_processed == plain_sim.events_processed

    def test_random_tie_break_permutes_but_loses_nothing(self):
        plain = _run_schedule(Simulator())
        shuffled = _run_schedule(TracedSimulator(
            tracer=SanitizerRuntime(), tie_break=RandomTieBreak(2)))
        assert sorted(shuffled) == sorted(plain)

    def test_random_tie_break_is_replayable(self):
        first = _run_schedule(TracedSimulator(
            tracer=SanitizerRuntime(), tie_break=RandomTieBreak(5)))
        second = _run_schedule(TracedSimulator(
            tracer=SanitizerRuntime(), tie_break=RandomTieBreak(5)))
        assert first == second

    def test_plain_simulator_has_no_tracer(self):
        # The zero-cost seam: `tracer` is a class attribute on the base
        # Simulator, so untraced runs pay one attribute load per site.
        assert Simulator.tracer is None
        assert Simulator().tracer is None
