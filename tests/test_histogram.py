"""Tests for the log-linear latency histogram."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram import LatencyHistogram


class TestBasics:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.summary()["max"] == 0.0

    def test_single_value(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        assert hist.count == 1
        assert hist.mean == pytest.approx(1e-3)
        assert hist.percentile(50) == pytest.approx(1e-3, rel=0.05)
        assert hist.percentile(99) == pytest.approx(1e-3, rel=0.05)

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        for value in (1e-6, 2e-6, 3e-6):
            hist.record(value)
        assert hist.mean == pytest.approx(2e-6)

    def test_percentile_order(self):
        hist = LatencyHistogram()
        for i in range(1, 101):
            hist.record(i * 1e-4)
        p50 = hist.percentile(50)
        p95 = hist.percentile(95)
        p99 = hist.percentile(99)
        assert p50 <= p95 <= p99
        assert p50 == pytest.approx(50e-4, rel=0.05)
        assert p99 == pytest.approx(99e-4, rel=0.05)

    def test_clamping(self):
        hist = LatencyHistogram(min_value=1e-6, max_value=1.0)
        hist.record(1e-12)   # below min: clamped
        hist.record(100.0)   # above max: clamped
        assert hist.count == 2
        assert hist.percentile(1) >= 1e-6 * 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(sub_buckets=1)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.record(5e-3)
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99",
                                "max"}
        assert summary["count"] == 1


class TestMerge:
    def test_merge_combines(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for i in range(50):
            a.record(1e-3)
            b.record(2e-3)
        a.merge(b)
        assert a.count == 100
        assert a.mean == pytest.approx(1.5e-3)
        assert a.percentile(25) == pytest.approx(1e-3, rel=0.05)
        assert a.percentile(75) == pytest.approx(2e-3, rel=0.05)

    def test_merge_config_mismatch(self):
        a = LatencyHistogram(sub_buckets=32)
        b = LatencyHistogram(sub_buckets=64)
        with pytest.raises(ValueError):
            a.merge(b)


class TestAccuracyProperty:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1e-7, max_value=10.0),
        min_size=1, max_size=300))
    def test_percentiles_within_relative_error(self, values):
        """Every reported percentile lies within the histogram's bucket
        resolution (~2/sub_buckets relative error) of the exact order
        statistic."""
        hist = LatencyHistogram(sub_buckets=32)
        for value in values:
            hist.record(value)
        ordered = sorted(values)
        for p in (50, 90, 99):
            import math
            rank = max(1, math.ceil(len(ordered) * p / 100.0))
            exact = ordered[rank - 1]
            reported = hist.percentile(p)
            assert reported == pytest.approx(exact, rel=0.10), \
                f"p{p}: reported {reported} vs exact {exact}"

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1e-7, max_value=10.0),
        min_size=1, max_size=200))
    def test_count_and_extremes_exact(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        assert hist.count == len(values)
        assert hist.min_seen == min(values)
        assert hist.max_seen == max(values)


class TestClientIntegration:
    def test_txn_stats_populate_histogram(self):
        from repro.harness.cluster import Cluster, ClusterConfig
        from repro.harness.metrics import merged_latency_histogram

        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=2,
            backend="dram", populate_keys=10, seed=101))
        client = cluster.clients[0]

        def work():
            for i in range(5):
                txn = client.begin()
                yield client.txn_get(txn, f"key:{i}")
                yield client.commit(txn)

        cluster.sim.run_until_event(cluster.sim.process(work()))
        merged = merged_latency_histogram(cluster.clients)
        assert merged.count == 5
        assert merged.percentile(50) > 0
