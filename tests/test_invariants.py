"""Cross-cutting invariant tests: versioning order, end-to-end
serializability under adverse conditions (clock skew, duplicate delivery,
flash GC churn)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import COMMITTED
from repro.versioning import MIN_VERSION, Version


class TestVersionOrdering:
    @settings(max_examples=100, deadline=None)
    @given(
        ts_a=st.floats(min_value=-1e6, max_value=1e6),
        ts_b=st.floats(min_value=-1e6, max_value=1e6),
        client_a=st.integers(min_value=0, max_value=1000),
        client_b=st.integers(min_value=0, max_value=1000),
    )
    def test_total_order(self, ts_a, ts_b, client_a, client_b):
        a = Version(ts_a, client_a)
        b = Version(ts_b, client_b)
        assert (a < b) + (a == b) + (a > b) == 1
        if ts_a < ts_b:
            assert a < b
        if ts_a == ts_b and client_a < client_b:
            assert a < b

    def test_min_version_below_everything(self):
        assert MIN_VERSION < Version(-1e300, 0)
        assert MIN_VERSION < Version(0.0, -1000)

    def test_client_id_breaks_ties(self):
        assert Version(1.0, 1) < Version(1.0, 2)


def _history_is_serializable(history):
    """Adapter: (txn_id, reads, writes, ts) tuples -> repro.verify."""
    from repro.verify import TxnEntry, check_serializability
    entries = [
        TxnEntry(txn_id=txn_id, reads=dict(reads), writes=dict(writes),
                 ts=ts)
        for txn_id, reads, writes, ts in history
    ]
    ok, _witness = check_serializability(entries)
    return ok


def run_random_workload(cluster, txns_per_client=25, keys_per_txn=3,
                        write_probability=0.6):
    """Drive random read/write transactions; return the committed
    history for offline checking."""
    history = []
    sim = cluster.sim

    def client_loop(client):
        rng = cluster.rng.substream(f"inv{client.client_id}")
        for i in range(txns_per_client):
            txn = client.begin()
            keys = rng.sample(cluster.populated_keys, keys_per_txn)
            observed = {}
            aborted_early = False
            for key in keys:
                try:
                    yield client.txn_get(txn, key)
                except Exception:
                    client.abort(txn, "read-failed")
                    aborted_early = True
                    break
                obs = txn.reads[key]
                observed[key] = (tuple(obs.version)
                                 if obs.version else None)
            if aborted_early:
                continue
            writes = {}
            if rng.random() < write_probability:
                write_key = keys[0]
                client.put(txn, write_key, f"{client.client_id}:{i}")
            outcome = yield client.commit(txn)
            if outcome == COMMITTED:
                if txn.writes:
                    version = (txn.ts_commit, client.client_id)
                    writes = {key: version for key in txn.writes}
                    ts = txn.ts_commit
                else:
                    ts = txn.ts_begin
                history.append((txn.txn_id, observed, writes, ts))
            yield sim.timeout(0.2e-3)

    procs = [sim.process(client_loop(c)) for c in cluster.clients]
    for proc in procs:
        sim.run_until_event(proc)
    return history


class TestEndToEndSerializability:
    @pytest.mark.parametrize("backend", ["dram", "mftl", "vftl"])
    def test_serializable_under_gc_churn(self, backend):
        cluster = Cluster(ClusterConfig(
            num_shards=2, replicas_per_shard=1, num_clients=4,
            backend=backend, clock_preset="ptp-sw", seed=61,
            populate_keys=12))
        for client in cluster.clients:
            client.start_watermark_daemon(0.02)
        history = run_random_workload(cluster)
        assert len(history) > 30
        assert _history_is_serializable(history)

    def test_serializable_under_ntp_skew(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=6,
            backend="dram", clock_preset="ntp", seed=67,
            populate_keys=10))
        history = run_random_workload(cluster, txns_per_client=30)
        assert len(history) > 40
        assert _history_is_serializable(history)

    def test_serializable_with_duplicate_delivery(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=4,
            backend="dram", clock_preset="ptp-sw", seed=71,
            populate_keys=10))
        cluster.network.duplicate_probability = 0.3
        history = run_random_workload(cluster)
        assert len(history) > 25
        assert _history_is_serializable(history)

    def test_committed_writes_never_lost(self):
        """Every committed write is either the current value or
        superseded by a later committed write."""
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=3,
            backend="mftl", clock_preset="ptp-sw", seed=73,
            populate_keys=8))
        history = run_random_workload(cluster, txns_per_client=20)
        committed_writes = {}
        for _txn_id, _reads, writes, _ts in history:
            for key, version in writes.items():
                existing = committed_writes.get(key)
                if existing is None or version > existing:
                    committed_writes[key] = version
        client = cluster.clients[0]
        sim = cluster.sim
        for key, version in committed_writes.items():
            def check(key=key):
                txn = client.begin()
                yield client.txn_get(txn, key)
                obs = txn.reads[key]
                yield client.commit(txn)
                return tuple(obs.version)

            final = sim.run_until_event(sim.process(check()))
            assert final >= version, (
                f"{key}: final version {final} older than committed "
                f"{version}")
