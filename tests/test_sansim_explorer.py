"""End-to-end tests for sansim schedule exploration.

These drive the real explorer over the seeded CTP-race fixture (the
pre-PR-4 commit-without-lock bug preserved under
``tests/fixtures/sansim/``) and over a clean production workload,
check the golden witness snapshot, replay determinism, the
static/dynamic reconciliation report, and the ``repro sansim`` CLI
contract the CI job depends on.

Paths inside witnesses are cwd-relative, so — like the analyzer tests —
this module expects to run from the repository root.
"""

import json
import os

import pytest

from repro.analysis.engine import analyze_paths
from repro.sansim.explorer import explore, parse_replay_spec, run_trial
from repro.sansim.report import (
    CONFIRMED,
    DYNAMIC_ONLY,
    STATIC_ONLY,
    build_report,
    render_payload,
)
from repro.sansim.cli import main

GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures", "sansim",
                      "golden.json")
FIXTURE_SCOPE = os.path.join("tests", "fixtures", "sansim")


@pytest.fixture(scope="module")
def ctp_race_result():
    """One exploration of the seeded fixture, shared across tests.

    Uses the exact trial budget and seed of the CI job and the golden
    snapshot so a drift shows up here first.
    """
    return explore("ctp-race", trials=5, seed=1)


class TestSeededFixture:
    def test_explorer_finds_the_race(self, ctp_race_result):
        rules = {w.rule_id for w in ctp_race_result.witnesses}
        assert rules == {"SAN001", "SAN002"}

    def test_single_apply_violation_witnessed(self, ctp_race_result):
        single_apply = [w for w in ctp_race_result.witnesses
                        if "single-apply invariant violated" in w.message]
        assert len(single_apply) == 1
        assert single_apply[0].location == "txn-apply@srv-0-0"

    def test_witness_sites_name_the_fixture_functions(self,
                                                      ctp_race_result):
        functions = {(w.acting.function, w.prior.function)
                     for w in ctp_race_result.witnesses}
        assert ("_apply_outcome", "_run_ctp_racy") in functions
        assert ("_apply_outcome", "_apply_commit") in functions
        paths = {w.acting.path for w in ctp_race_result.witnesses}
        assert paths == {os.path.join(FIXTURE_SCOPE, "milana",
                                      "ctp_race.py")}

    def test_matches_golden_snapshot(self, ctp_race_result):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert ctp_race_result.trials == golden["trials"]
        assert ctp_race_result.seed == golden["seed"]
        got = sorted(w.fingerprint for w in ctp_race_result.witnesses)
        want = sorted(entry["fingerprint"]
                      for entry in golden["witnesses"])
        assert got == want

    def test_replay_seed_reproduces_witnesses(self, ctp_race_result):
        # Every witness's replay spec, re-run standalone, must
        # deterministically reproduce that witness.
        specs = {w.replay_command.split("--replay ")[1]
                 for w in ctp_race_result.witnesses}
        for spec_text in sorted(specs):
            result = run_trial(parse_replay_spec(spec_text))
            replayed = {w.fingerprint for w in result.witnesses}
            expected = {
                w.fingerprint for w in ctp_race_result.witnesses
                if w.replay_command.endswith(spec_text)
            }
            assert expected <= replayed, spec_text

    def test_fixed_control_is_witness_free(self):
        result = run_trial(parse_replay_spec("ctp-race-safe:0:fifo:1"))
        assert result.witnesses == []
        # The control actually exercised the same machinery.
        assert result.stats["tracked_writes"] > 0


class TestCleanTree:
    def test_retwis_smoke_has_no_witnesses(self):
        result = run_trial(parse_replay_spec("retwis:0:fifo:1"))
        assert result.witnesses == []
        assert result.stats["tracked_writes"] > 0
        assert result.stats["contexts"] > 0


class TestReconciliation:
    def test_static_rules_fire_on_fixture(self):
        findings, _files = analyze_paths([FIXTURE_SCOPE],
                                         select=["ATM001", "ATM002"])
        assert {f.rule_id for f in findings} == {"ATM001", "ATM002"}

    def test_fixture_findings_confirmed_by_witness(self, ctp_race_result):
        report = build_report([ctp_race_result])
        assert report.scopes == [FIXTURE_SCOPE]
        summary = report.summary
        assert summary[CONFIRMED] >= 1
        assert summary[STATIC_ONLY] == 0
        assert summary[DYNAMIC_ONLY] == 0
        confirmed = [e for e in report.entries
                     if e["status"] == CONFIRMED]
        assert all(e["witnesses"] for e in confirmed)
        assert {e["static"]["rule"] for e in confirmed} == \
            {"ATM001", "ATM002"}

    def test_payload_shape(self, ctp_race_result):
        report = build_report([ctp_race_result])
        payload = render_payload([ctp_race_result], report)
        assert payload["tool"] == "sansim"
        run = payload["runs"][0]
        assert run["workload"] == "ctp-race"
        assert sorted(run["witnesses"]) == \
            sorted(w["fingerprint"] for w in payload["witnesses"])
        assert payload["reconciliation"]["summary"][CONFIRMED] >= 1


class TestCli:
    def test_witnesses_fail_the_run(self, capsys):
        assert main(["ctp-race", "--trials", "1"]) == 1
        out = capsys.readouterr().out
        assert "SAN001" in out
        assert "--replay ctp-race:0:fifo:0" in out

    def test_expect_witness_inverts_polarity(self, capsys):
        assert main(["ctp-race", "--trials", "1",
                     "--expect-witness"]) == 0
        capsys.readouterr()

    def test_replay_mode(self, capsys):
        assert main(["ctp-race", "--replay", "ctp-race:0:fifo:1",
                     "--expect-witness"]) == 0
        capsys.readouterr()

    def test_baseline_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "sansim-baseline.json"
        assert main(["ctp-race", "--trials", "1", "--write-baseline",
                     str(baseline)]) == 0
        assert main(["ctp-race", "--trials", "1", "--baseline",
                     str(baseline)]) == 0
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["ctp-race", "--trials", "1", "--format", "json",
              "--output", str(out)])
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["tool"] == "sansim"
        assert payload["witnesses"]
        assert payload["reconciliation"]["summary"][CONFIRMED] >= 1

    def test_sarif_format_carries_san_rules(self, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        main(["ctp-race", "--trials", "1", "--format", "sarif",
              "--output", str(out)])
        capsys.readouterr()
        sarif = json.loads(out.read_text(encoding="utf-8"))
        run = sarif["runs"][0]
        rule_ids = {r["id"] for r in
                    run["tool"]["driver"]["rules"]}
        assert {"SAN001", "SAN002"} <= rule_ids
        assert run["results"]

    def test_list_workloads(self, capsys):
        assert main(["--list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "ctp-race" in out
        assert "retwis" in out

    def test_unknown_workload_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-workload"])
        assert excinfo.value.code == 2
        capsys.readouterr()
