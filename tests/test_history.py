"""Tests for version-history (time-travel) reads (§3.1 analytics)."""

import pytest

from repro.flash import FlashDevice, FlashGeometry
from repro.ftl import DRAMBackend, MFTLBackend, VFTLBackend
from repro.harness.cluster import Cluster, ClusterConfig
from repro.semel import SemelClient
from repro.sim import Simulator
from repro.versioning import Version


GEOM = FlashGeometry(page_size=4096, pages_per_block=8, num_blocks=32,
                     num_channels=4)


def make_backend(sim, kind):
    if kind == "dram":
        return DRAMBackend(sim)
    if kind == "mftl":
        return MFTLBackend(sim, FlashDevice(sim, GEOM))
    return VFTLBackend(sim, FlashDevice(sim, GEOM))


class TestBackendHistory:
    @pytest.mark.parametrize("kind", ["dram", "mftl", "vftl"])
    def test_history_returns_range_oldest_first(self, kind):
        sim = Simulator()
        backend = make_backend(sim, kind)
        for ts in (1.0, 2.0, 3.0, 4.0):
            sim.run_until_event(
                backend.put("k", f"v{ts}", Version(ts, 1)))
        history = sim.run_until_event(backend.get_history("k", 1.5, 3.5))
        assert [value for _, value in history] == ["v2.0", "v3.0"]
        assert [v.timestamp for v, _ in history] == [2.0, 3.0]

    @pytest.mark.parametrize("kind", ["dram", "mftl"])
    def test_full_range(self, kind):
        sim = Simulator()
        backend = make_backend(sim, kind)
        for ts in (1.0, 2.0, 3.0):
            sim.run_until_event(
                backend.put("k", f"v{ts}", Version(ts, 1)))
        history = sim.run_until_event(
            backend.get_history("k", float("-inf"), float("inf")))
        assert len(history) == 3

    def test_missing_key_empty(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        assert sim.run_until_event(
            backend.get_history("ghost", 0.0, 10.0)) == []

    def test_invalid_range(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        proc = backend.get_history("k", 5.0, 1.0)
        with pytest.raises(ValueError):
            sim.run_until_event(proc)

    def test_history_truncated_by_watermark_gc(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        for ts in (1.0, 2.0, 3.0, 4.0):
            sim.run_until_event(
                backend.put("k", f"v{ts}", Version(ts, 1)))
        backend.set_watermark(3.5)
        # Trim happens on the next put.
        sim.run_until_event(backend.put("k", "v5", Version(5.0, 1)))
        history = sim.run_until_event(
            backend.get_history("k", 0.0, 10.0))
        timestamps = [v.timestamp for v, _ in history]
        # Versions 1.0 and 2.0 are dead under the watermark rule; 3.0
        # survives as the youngest version at or below the watermark.
        assert timestamps == [3.0, 4.0, 5.0]


class TestEndToEndHistory:
    def test_semel_client_history(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=0,
            backend="mftl", populate_keys=10, seed=107))
        sim = cluster.sim
        from repro.clocks import PerfectClock
        client = SemelClient(sim, cluster.network, cluster.directory,
                             PerfectClock(sim), client_id=1)

        def work():
            stamps = []
            for i in range(4):
                version = yield client.put("sensor", f"reading-{i}")
                stamps.append(version.timestamp)
                yield sim.timeout(0.01)
            history = yield client.get_history(
                "sensor", stamps[1], stamps[2])
            return history

        history = sim.run_until_event(sim.process(work()))
        assert [value for _, value in history] == \
            ["reading-1", "reading-2"]
