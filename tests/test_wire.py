"""Tests for the typed wire protocol: registry integrity, byte-model
sizing, end-to-end type enforcement, size-aware transport, and
duplicate-delivery idempotence under the typed messages."""

import pytest

from repro.clocks import PerfectClock
from repro.ftl import DRAMBackend
from repro.milana import COMMITTED, MilanaClient, MilanaServer
from repro.net import AppError, FixedLatency, Network, RpcNode
from repro.semel import Directory, SemelClient, StorageServer
from repro.sim import SeededRng, Simulator
from repro.wire import (
    REGISTRY,
    Ack,
    SemelGet,
    SemelGetReply,
    SemelPut,
    payload_size,
    render_catalogue,
    spec_for,
    validate_registry,
    wire_size_of,
)
from repro.wire.check import run_check


class TestRegistry:
    def test_registry_validates_clean(self):
        assert validate_registry() == []

    def test_every_method_is_dotted_and_unique(self):
        assert len(REGISTRY) >= 16
        for method, spec in REGISTRY.items():
            assert "." in method
            assert spec.method == method

    def test_spec_lookup(self):
        spec = spec_for("semel.get")
        assert spec.request is SemelGet
        assert spec.response is SemelGetReply
        assert spec_for("unknown.method") is None

    def test_round_trip_preserves_equality(self):
        message = SemelPut(key="k", value="v", version=(1.5, 3))
        assert SemelPut.from_wire(message.to_wire()) == message

    def test_catalogue_covers_every_method(self):
        catalogue = render_catalogue()
        for method in REGISTRY:
            assert f"`{method}`" in catalogue

    def test_call_sites_agree_with_registry(self):
        from pathlib import Path

        import repro

        problems, num_methods = run_check(Path(repro.__file__).parent)
        assert problems == []
        assert num_methods == len(REGISTRY)


class TestSizing:
    def test_sizes_are_deterministic(self):
        a = SemelPut(key="user:1", value="x" * 50, version=(2.0, 1))
        b = SemelPut(key="user:1", value="x" * 50, version=(2.0, 1))
        assert a.wire_size() == b.wire_size()
        assert wire_size_of(a) == a.wire_size()

    def test_size_grows_with_value(self):
        small = SemelPut(key="k", value="x", version=(1.0, 1))
        large = SemelPut(key="k", value="x" * 1000, version=(1.0, 1))
        assert large.wire_size() - small.wire_size() == 999

    def test_scalar_sizes(self):
        assert payload_size(None) == 1
        assert payload_size(True) == 1  # bool checked before int
        assert payload_size(7) == 8
        assert payload_size(1.5) == 8
        assert payload_size("abcd") == 4 + 4

    def test_ack_is_tiny(self):
        assert Ack().wire_size() <= 4


def make_net(seed=1, latency=None, duplicate_probability=0.0):
    sim = Simulator()
    network = Network(sim, SeededRng(seed),
                      latency=latency or FixedLatency(50e-6),
                      duplicate_probability=duplicate_probability)
    return sim, network


class TestTypedEnforcement:
    def test_call_rejects_raw_dict_payload(self):
        sim, network = make_net()
        node = RpcNode(sim, network, "a")
        network.register("b")
        with pytest.raises(TypeError, match="SemelGet"):
            node.call("b", "semel.get",
                      {"key": "k"})  # simlint: disable=WIRE001

    def test_send_oneway_rejects_wrong_message_type(self):
        sim, network = make_net()
        node = RpcNode(sim, network, "a")
        network.register("b")
        with pytest.raises(TypeError):
            node.send_oneway("b", "semel.watermark", SemelGet(key="k"))

    def test_register_rejects_unknown_dotted_method(self):
        sim, network = make_net()
        node = RpcNode(sim, network, "a")

        def handler(payload):
            return None
            yield

        with pytest.raises(ValueError, match="registry"):
            node.register("semel.frobnicate", handler)

    def test_bare_method_names_bypass_registry(self):
        sim, network = make_net()
        server = RpcNode(sim, network, "srv")
        client = RpcNode(sim, network, "cli")

        def echo(payload):
            return payload
            yield

        server.register("echo", echo)
        assert sim.run_until_event(
            client.call("srv", "echo", {"free": "form"})) == \
            {"free": "form"}

    def test_mistyped_handler_result_is_an_error_response(self):
        sim, network = make_net()
        server = RpcNode(sim, network, "srv")
        client = RpcNode(sim, network, "cli")

        def bad_handler(payload):
            return {"found": False}  # should be a SemelGetReply
            yield

        server.register("semel.get", bad_handler)

        def attempt():
            try:
                yield client.call("srv", "semel.get", SemelGet(key="k"))
            except AppError as exc:
                return str(exc)

        result = sim.run_until_event(sim.process(attempt()))
        assert "SemelGetReply" in result
        assert server.handler_errors == 1


class TestPerNetworkRequestIds:
    def test_fresh_networks_start_at_one(self):
        _, net1 = make_net(seed=1)
        _, net2 = make_net(seed=2)
        assert net1.next_request_id() == 1
        assert net2.next_request_id() == 1
        assert net1.next_request_id() == 2


class TestSizeAwareTransport:
    def _timed_delivery(self, latency, message):
        sim, network = make_net(latency=latency)
        inbox = network.register("b")
        network.register("a")
        network.send("a", "b", message)

        def receive():
            yield inbox.get()
            return sim.now

        arrival = sim.run_until_event(sim.process(receive()))
        return sim, network, arrival

    def test_no_bandwidth_means_no_transmission_delay(self):
        message = SemelPut(key="k", value="x" * 100, version=(1.0, 1))
        _, _, arrival = self._timed_delivery(FixedLatency(1e-3), message)
        assert arrival == 1e-3

    def test_bandwidth_charges_size_proportional_delay(self):
        message = SemelPut(key="k", value="x" * 100, version=(1.0, 1))
        bandwidth = 1e6  # bytes per simulated second
        _, _, arrival = self._timed_delivery(
            FixedLatency(1e-3, bandwidth=bandwidth), message)
        expected = 1e-3 + wire_size_of(message) / bandwidth
        assert arrival == pytest.approx(expected, rel=1e-12)

    def test_bytes_by_edge_accounts_each_message(self):
        message = SemelGet(key="key:1")
        _, network, _ = self._timed_delivery(FixedLatency(1e-3), message)
        assert network.stats.bytes_by_edge == \
            {("a", "b"): wire_size_of(message)}
        assert network.stats.total_bytes == wire_size_of(message)

    def test_crashed_destination_is_not_charged(self):
        sim, network = make_net()
        network.register("a")
        network.register("b")
        network.crash("b")
        network.send("a", "b", SemelGet(key="k"))
        assert network.stats.bytes_by_edge == {}

    def test_latency_model_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            FixedLatency(1e-3, bandwidth=0.0)


# -- duplicate-delivery idempotence under the typed protocol ----------------


def run_semel_workload(duplicate_probability):
    """A scripted SEMEL run; returns (acked versions, replica states)."""
    sim = Simulator()
    network = Network(sim, SeededRng(23), latency=FixedLatency(50e-6),
                      duplicate_probability=duplicate_probability)
    directory = Directory({"shard0": ["s-0", "s-1", "s-2"]})
    servers = {
        name: StorageServer(sim, network, directory, name, "shard0",
                            DRAMBackend(sim))
        for name in ("s-0", "s-1", "s-2")
    }
    client = SemelClient(sim, network, directory, PerfectClock(sim),
                         client_id=1)
    acked = []

    def work():
        for i in range(20):
            version = yield client.put(f"k{i % 5}", f"v{i}")
            acked.append(version)
            yield sim.timeout(1e-3)

    sim.run_until_event(sim.process(work()))
    sim.run(until=sim.now + 20e-3)  # drain laggard replication
    states = {
        name: {f"k{j}": server.backend.versions_of(f"k{j}")
               for j in range(5)}
        for name, server in servers.items()
    }
    return acked, states


def run_milana_workload(duplicate_probability):
    """A scripted MILANA run; returns (outcomes, txn statuses, states)."""
    sim = Simulator()
    network = Network(sim, SeededRng(29), latency=FixedLatency(50e-6),
                      duplicate_probability=duplicate_probability)
    directory = Directory({"shard0": ["m-0", "m-1", "m-2"]})
    servers = {
        name: MilanaServer(sim, network, directory, name, "shard0",
                           DRAMBackend(sim))
        for name in ("m-0", "m-1", "m-2")
    }
    client = MilanaClient(sim, network, directory, PerfectClock(sim),
                          client_id=1)
    outcomes = []

    def work():
        for i in range(15):
            txn = client.begin()
            yield client.txn_get(txn, f"k{i % 4}")
            client.put(txn, f"k{i % 4}", f"v{i}")
            outcomes.append((yield client.commit(txn)))
            yield sim.timeout(1e-3)

    sim.run_until_event(sim.process(work()))
    sim.run(until=sim.now + 20e-3)  # drain decide/replication traffic
    statuses = {
        name: {txn_id: record.status
               for txn_id, record in server.txn_table.items()}
        for name, server in servers.items()
    }
    states = {
        name: {f"k{j}": server.backend.versions_of(f"k{j}")
               for j in range(4)}
        for name, server in servers.items()
    }
    return outcomes, statuses, states


class TestDuplicateDeliveryIdempotence:
    def test_semel_replicate_state_matches_no_duplicate_run(self):
        baseline_acked, baseline_states = run_semel_workload(0.0)
        dup_acked, dup_states = run_semel_workload(0.6)
        assert dup_acked == baseline_acked
        assert dup_states == baseline_states

    def test_milana_prepare_decide_outcomes_match_no_duplicate_run(self):
        baseline = run_milana_workload(0.0)
        duplicated = run_milana_workload(0.6)
        assert duplicated == baseline
        outcomes, statuses, _ = duplicated
        # Uncontended sequential transactions must all commit, and every
        # replica must agree on their statuses.
        assert outcomes == [COMMITTED] * 15
        assert statuses["m-1"] == statuses["m-0"]
        assert statuses["m-2"] == statuses["m-0"]

    def test_duplicates_were_actually_injected(self):
        sim = Simulator()
        network = Network(sim, SeededRng(23),
                          latency=FixedLatency(50e-6),
                          duplicate_probability=0.6)
        network.register("a")
        network.register("b")
        for _ in range(50):
            network.send("a", "b", SemelGet(key="k"))
        assert network.stats.messages_duplicated > 0
        # Duplicates are charged on the wire like any other message.
        assert network.stats.bytes_by_edge[("a", "b")] == \
            wire_size_of(SemelGet(key="k")) * (
                50 + network.stats.messages_duplicated)
