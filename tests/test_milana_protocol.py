"""Direct protocol-level tests of the MILANA server handlers:
idempotence, out-of-order replication records, relaxed backup updates."""


from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import ABORTED, COMMITTED, PREPARED, UNKNOWN
from repro.versioning import Version
from repro.wire import (
    MilanaDecide,
    MilanaDecideReply,
    MilanaFetchLog,
    MilanaPrepare,
    MilanaReplicateTxn,
    MilanaTxnStatus,
    TxnRecordWire,
)


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=1,
                    backend="dram", clock_preset="perfect", seed=113,
                    populate_keys=10)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def prepare_record(txn_id, writes, ts_commit, reads=None,
                   participants=("shard0",), status=PREPARED):
    return TxnRecordWire(
        txn_id=txn_id,
        client_id=9,
        client_name="tester",
        ts_commit=ts_commit,
        reads=tuple(reads or ()),
        writes=tuple(writes),
        participants=tuple(participants),
        status=status,
        prepared_at=0.0,
    )


def prepare_request(txn_id, writes, ts_commit, **kwargs):
    return MilanaPrepare(
        record=prepare_record(txn_id, writes, ts_commit, **kwargs))


class TestPrepareIdempotence:
    def test_retransmitted_prepare_repeats_vote(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        request = prepare_request("tx-1", [("key:0", "v")],
                                  ts_commit=sim.now + 1e-3)
        first = sim.run_until_event(
            client.node.call("srv-0-0", "milana.prepare", request))
        second = sim.run_until_event(
            client.node.call("srv-0-0", "milana.prepare", request))
        assert first.vote == "SUCCESS"
        assert second.vote == "SUCCESS"
        # Only one prepared record exists.
        assert cluster.servers["srv-0-0"].txn_table["tx-1"].status == \
            PREPARED

    def test_retransmitted_aborted_prepare_repeats_abort(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        # Block key:0 with a first prepared transaction.
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            prepare_request("blocker", [("key:0", "x")],
                            ts_commit=sim.now + 1e-3)))
        conflicting = prepare_request("loser", [("key:0", "y")],
                                      ts_commit=sim.now + 2e-3)
        first = sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare", conflicting))
        second = sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare", conflicting))
        assert first.vote == "ABORT"
        assert second.vote == "ABORT"


class TestDecideHandler:
    def test_decide_unknown_txn_is_noop(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        reply = cluster.sim.run_until_event(client.node.call(
            "srv-0-0", "milana.decide",
            MilanaDecide(txn_id="never-heard-of-it", outcome=COMMITTED)))
        assert reply == MilanaDecideReply(status=UNKNOWN)

    def test_decide_twice_is_idempotent(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        ts = sim.now + 1e-3
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            prepare_request("tx-2", [("key:1", "once")], ts)))
        for _ in range(2):
            sim.run_until_event(client.node.call(
                "srv-0-0", "milana.decide",
                MilanaDecide(txn_id="tx-2", outcome=COMMITTED)))
        server = cluster.servers["srv-0-0"]
        assert server.txn_table["tx-2"].status == COMMITTED
        versions = server.backend.versions_of("key:1")
        assert versions.count(Version(ts, 9)) == 1

    def test_abort_clears_prepared_marks(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        ts = sim.now + 1e-3
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            prepare_request("tx-3", [("key:2", "nope")], ts)))
        server = cluster.servers["srv-0-0"]
        assert server.key_states.peek("key:2").prepared is not None
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.decide",
            MilanaDecide(txn_id="tx-3", outcome=ABORTED)))
        assert server.key_states.peek("key:2").prepared is None
        # The aborted write never reached the store.
        assert Version(ts, 9) not in server.backend.versions_of("key:2")


class TestRelaxedBackupUpdates:
    def test_commit_record_before_prepare_record(self):
        """§3.2 / Figure 5: backups accept records in any order; a
        PREPARED record arriving after COMMITTED must not regress."""
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        ts = sim.now + 1e-3
        committed = MilanaReplicateTxn(record=prepare_record(
            "tx-4", [("key:3", "ooo")], ts, status=COMMITTED))
        prepared = MilanaReplicateTxn(record=prepare_record(
            "tx-4", [("key:3", "ooo")], ts))
        backup = "srv-0-1"
        sim.run_until_event(client.node.call(
            backup, "milana.replicate_txn", committed))
        server = cluster.servers[backup]
        assert server.txn_table["tx-4"].status == COMMITTED
        assert Version(ts, 9) in server.backend.versions_of("key:3")
        # The late prepare record must not downgrade the status.
        sim.run_until_event(client.node.call(
            backup, "milana.replicate_txn", prepared))
        assert server.txn_table["tx-4"].status == COMMITTED

    def test_duplicate_commit_records_apply_once(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        ts = sim.now + 1e-3
        record = MilanaReplicateTxn(record=prepare_record(
            "tx-5", [("key:4", "dup")], ts, status=COMMITTED))
        backup = "srv-0-1"
        for _ in range(3):
            sim.run_until_event(client.node.call(
                backup, "milana.replicate_txn", record))
        versions = cluster.servers[backup].backend.versions_of("key:4")
        assert versions.count(Version(ts, 9)) == 1


class TestStatusQueries:
    def test_txn_status_lifecycle(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim

        def status(txn_id):
            return sim.run_until_event(client.node.call(
                "srv-0-0", "milana.txn_status",
                MilanaTxnStatus(txn_id=txn_id))).status

        assert status("tx-6") == UNKNOWN
        ts = sim.now + 1e-3
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            prepare_request("tx-6", [("key:5", "s")], ts)))
        assert status("tx-6") == PREPARED
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.decide",
            MilanaDecide(txn_id="tx-6", outcome=COMMITTED)))
        assert status("tx-6") == COMMITTED

    def test_fetch_log_returns_wire_records(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        sim = cluster.sim
        ts = sim.now + 1e-3
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            prepare_request("tx-7", [("key:6", "log")], ts)))
        reply = sim.run_until_event(client.node.call(
            "srv-0-0", "milana.fetch_log", MilanaFetchLog()))
        txn_ids = [record.txn_id for record in reply.records]
        assert "tx-7" in txn_ids
        assert all(isinstance(record, TxnRecordWire)
                   for record in reply.records)
