"""Fingerprint equivalence with the sanitizer enabled.

The acceptance bar for the instrumentation seam is behavioural, not
just perf: with the sanitizer off the production simulator is untouched
(covered by ``test_fingerprints.py`` against the golden snapshot), and
with the sanitizer ON under the default fifo tie-break the simulation
must produce byte-identical outcomes — same schedule material, same
golden fingerprints. Only non-default tie-break policies are allowed to
perturb the schedule, and even then only among same-timestamp ties.
"""

import json
import os

import pytest

from repro.bench.fingerprint import fingerprint_material, schedule_fingerprint
from repro.sansim import FifoTieBreak, SanitizerRuntime, TracedSimulator

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "fingerprints.json")

#: figure6 sweeps clock skew inside the workload and builds its own
#: simulators internally, so it does not accept a factory.
FACTORY_KINDS = ("retwis", "ycsb")


def _golden():
    with open(FIXTURE, encoding="utf-8") as handle:
        return json.load(handle)


def _traced_factory():
    return TracedSimulator(tracer=SanitizerRuntime(),
                           tie_break=FifoTieBreak())


class TestSanitizerOnFifoEquivalence:
    @pytest.mark.parametrize("kind", FACTORY_KINDS)
    def test_material_is_byte_identical(self, kind):
        plain = fingerprint_material(kind)
        traced = fingerprint_material(kind,
                                      simulator_factory=_traced_factory)
        assert traced == plain

    @pytest.mark.parametrize("kind", FACTORY_KINDS)
    def test_traced_fingerprint_matches_golden(self, kind):
        traced = schedule_fingerprint(kind,
                                      simulator_factory=_traced_factory)
        assert traced == _golden()[kind]

    def test_figure6_rejects_factory(self):
        with pytest.raises(ValueError, match="figure6"):
            fingerprint_material("figure6", simulator_factory=_traced_factory)
