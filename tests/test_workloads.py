"""Tests for workload generators: Zipf, Retwis, micro-benchmark."""

import pytest

from repro.flash import FlashDevice, FlashGeometry
from repro.ftl import DRAMBackend, MFTLBackend
from repro.harness.cluster import Cluster, ClusterConfig
from repro.sim import SeededRng, Simulator
from repro.workloads import (
    RETWIS_MIX,
    RetwisInstance,
    ZipfGenerator,
    run_kv_microbench,
)


class TestZipf:
    def test_uniform_when_alpha_zero(self):
        rng = SeededRng(1)
        zipf = ZipfGenerator(rng, list(range(10)), alpha=0.0)
        counts = [0] * 10
        for _ in range(10_000):
            counts[zipf.draw()] += 1
        assert min(counts) > 700
        assert max(counts) < 1300

    def test_skew_increases_with_alpha(self):
        def top_share(alpha):
            rng = SeededRng(2)
            zipf = ZipfGenerator(rng, list(range(100)), alpha=alpha)
            hits = sum(1 for _ in range(5_000) if zipf.draw() < 5)
            return hits / 5_000

        assert top_share(0.99) > top_share(0.5) > top_share(0.0)

    def test_draw_distinct(self):
        rng = SeededRng(3)
        zipf = ZipfGenerator(rng, list(range(50)), alpha=0.9)
        sample = zipf.draw_distinct(10)
        assert len(sample) == len(set(sample)) == 10

    def test_draw_distinct_bounds(self):
        zipf = ZipfGenerator(SeededRng(4), [1, 2, 3], alpha=0.5)
        assert sorted(zipf.draw_distinct(3)) == [1, 2, 3]
        with pytest.raises(ValueError):
            zipf.draw_distinct(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(SeededRng(0), [], 0.5)
        with pytest.raises(ValueError):
            ZipfGenerator(SeededRng(0), [1], -1.0)

    def test_deterministic(self):
        a = ZipfGenerator(SeededRng(5), list(range(20)), 0.8)
        b = ZipfGenerator(SeededRng(5), list(range(20)), 0.8)
        assert [a.draw() for _ in range(50)] == [b.draw() for _ in range(50)]


class TestRetwis:
    def _cluster(self, **overrides):
        defaults = dict(num_shards=1, replicas_per_shard=1, num_clients=2,
                        backend="dram", populate_keys=100, seed=13)
        defaults.update(overrides)
        return Cluster(ClusterConfig(**defaults))

    def test_mix_weights_sum_to_100(self):
        assert sum(w for _, _, _, w in RETWIS_MIX) == pytest.approx(100.0)

    def test_runs_fixed_transaction_count(self):
        cluster = self._cluster()
        instance = RetwisInstance(
            cluster.sim, cluster.clients[0], cluster.populated_keys,
            cluster.rng.substream("retwis"), alpha=0.5)
        proc = instance.run_transactions(40)
        cluster.sim.run_until_event(proc)
        assert sum(instance.stats.by_type.values()) == 40
        assert instance.stats.committed >= 40  # retries may add commits? no:
        # committed counts successful attempts of the 40 logical txns.
        assert instance.stats.committed <= instance.stats.attempts

    def test_type_distribution_roughly_matches_table2(self):
        cluster = self._cluster()
        instance = RetwisInstance(
            cluster.sim, cluster.clients[0], cluster.populated_keys,
            cluster.rng.substream("retwis"), alpha=0.3)
        cluster.sim.run_until_event(instance.run_transactions(400))
        share = {name: count / 400
                 for name, count in instance.stats.by_type.items()}
        assert share.get("get_timeline", 0) == pytest.approx(0.50, abs=0.12)
        assert share.get("post_tweet", 0) == pytest.approx(0.35, abs=0.12)

    def test_duration_run_stops(self):
        cluster = self._cluster()
        instance = RetwisInstance(
            cluster.sim, cluster.clients[0], cluster.populated_keys,
            cluster.rng.substream("retwis"), alpha=0.5)
        start = cluster.sim.now
        proc = instance.run(duration=0.25)
        cluster.sim.run_until_event(proc)
        assert cluster.sim.now >= start + 0.25
        assert instance.stats.attempts > 0

    def test_contention_raises_abort_rate(self):
        def abort_rate(alpha, seed=17):
            cluster = self._cluster(num_clients=8, populate_keys=50,
                                    seed=seed)
            instances = [
                RetwisInstance(cluster.sim, client,
                               cluster.populated_keys,
                               cluster.rng.substream(f"r{i}"), alpha=alpha)
                for i, client in enumerate(cluster.clients)
            ]
            procs = [inst.run_transactions(60) for inst in instances]
            for proc in procs:
                cluster.sim.run_until_event(proc)
            attempts = sum(i.stats.attempts for i in instances)
            aborted = sum(i.stats.aborted for i in instances)
            return aborted / attempts

        assert abort_rate(0.95) > abort_rate(0.1)


class TestMicrobench:
    def test_pure_get_workload(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        result = run_kv_microbench(
            sim, backend, SeededRng(7), num_keys=100, get_percent=100,
            duration=0.02, warmup=0.005, num_workers=16)
        assert result.puts == 0
        assert result.gets > 0
        assert result.throughput > 0
        assert result.mean_get_latency > 0

    def test_mixed_workload_on_flash(self):
        sim = Simulator()
        geometry = FlashGeometry(page_size=4096, pages_per_block=16,
                                 num_blocks=64, num_channels=8)
        backend = MFTLBackend(sim, FlashDevice(sim, geometry),
                              packing_delay=0.2e-3)
        result = run_kv_microbench(
            sim, backend, SeededRng(8), num_keys=200, get_percent=50,
            duration=0.05, warmup=0.01, num_workers=32)
        assert result.gets > 0 and result.puts > 0
        # GETs are a single 50 µs page read plus queueing; PUTs pay the
        # packing delay.
        assert result.mean_put_latency > result.mean_get_latency

    def test_get_percent_validation(self):
        sim = Simulator()
        backend = DRAMBackend(sim)
        with pytest.raises(ValueError):
            run_kv_microbench(sim, backend, SeededRng(0), 10, 150, 0.01)

    def test_gc_runs_during_measurement(self):
        sim = Simulator()
        # Size the device so the retention window's worth of versions
        # fits with room to spare, or GC has nothing it may discard.
        geometry = FlashGeometry(page_size=4096, pages_per_block=16,
                                 num_blocks=64, num_channels=8)
        backend = MFTLBackend(sim, FlashDevice(sim, geometry),
                              packing_delay=0.1e-3)
        run_kv_microbench(
            sim, backend, SeededRng(9), num_keys=100, get_percent=10,
            duration=0.3, warmup=0.02, num_workers=8,
            version_window=0.01)
        assert backend.stats.gc_runs > 0
