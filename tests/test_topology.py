"""Tests for the rack-aware network topology."""

import pytest

from repro.net import (
    FixedLatency,
    Network,
    RackTopology,
    spread_replicas_across_racks,
)
from repro.semel import Directory
from repro.sim import SeededRng, Simulator


class TestRackTopology:
    def _topology(self):
        return RackTopology(
            {"rack0": ["a", "b"], "rack1": ["c"]},
            intra_rack=FixedLatency(10e-6),
            cross_rack=FixedLatency(100e-6))

    def test_same_rack_detection(self):
        topo = self._topology()
        assert topo.same_rack("a", "b")
        assert not topo.same_rack("a", "c")
        assert not topo.same_rack("a", "unknown")

    def test_latency_selection(self):
        topo = self._topology()
        rng = SeededRng(1)
        assert topo.latency_between("a", "b", rng) == 10e-6
        assert topo.latency_between("a", "c", rng) == 100e-6
        # Unplaced nodes conservatively pay cross-rack latency.
        assert topo.latency_between("a", "ghost", rng) == 100e-6

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ValueError):
            RackTopology({"r0": ["a"], "r1": ["a"]})

    def test_assign_moves_node(self):
        topo = self._topology()
        topo.assign("c", "rack0")
        assert topo.same_rack("a", "c")

    def test_network_uses_topology(self):
        sim = Simulator()
        topo = self._topology()
        net = Network(sim, SeededRng(3), topology=topo)
        inbox_b = net.register("b")
        inbox_c = net.register("c")
        net.register("a")
        arrivals = {}

        def consumer(name, inbox):
            yield inbox.get()
            arrivals[name] = sim.now

        sim.process(consumer("b", inbox_b))
        sim.process(consumer("c", inbox_c))
        net.send("a", "b", "near")
        net.send("a", "c", "far")
        sim.run()
        assert arrivals["b"] == pytest.approx(10e-6)
        assert arrivals["c"] == pytest.approx(100e-6)


class TestReplicaSpreading:
    def test_no_shard_majority_in_one_rack(self):
        directory = Directory({
            "shard0": ["s0a", "s0b", "s0c"],
            "shard1": ["s1a", "s1b", "s1c"],
        })
        racks = spread_replicas_across_racks(directory, num_racks=3)
        topo = RackTopology(racks)
        for shard_name in directory.shard_names:
            shard = directory.shard(shard_name)
            rack_counts = {}
            for replica in shard.replicas:
                rack = topo.rack_of(replica)
                rack_counts[rack] = rack_counts.get(rack, 0) + 1
            majority = shard.fault_tolerance + 1
            assert max(rack_counts.values()) < majority + 1, (
                f"{shard_name} has a majority in one rack: {rack_counts}")

    def test_every_replica_placed(self):
        directory = Directory({"shard0": ["x", "y", "z"]})
        racks = spread_replicas_across_racks(directory, num_racks=3)
        placed = [node for nodes in racks.values() for node in nodes]
        assert sorted(placed) == ["x", "y", "z"]
