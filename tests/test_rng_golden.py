"""Golden-sequence regression tests for :class:`repro.sim.rng.SeededRng`.

Every experiment figure in this repo depends on these exact draw
sequences: a refactor that changes substream derivation or the order of
internal draws silently reshuffles workload randomness and invalidates
every saved benchmark result, even though no functional test would
notice. These tests pin the literal values so such a change fails loudly
— if you *mean* to change the RNG, update the goldens and flag that the
experiment numbers will shift.
"""

import pytest

from repro.sim.rng import SeededRng


class TestDerivation:
    """Seed/name -> internal seed mapping must stay byte-stable."""

    def test_root_derivation(self):
        assert SeededRng._derive(42, "root") == 7913543997837590107

    def test_substream_derivation(self):
        assert SeededRng._derive(42, "root/net") == 1020106975880957692

    def test_substream_names_compose_by_path(self):
        stream = SeededRng(42).substream("net").substream("jitter")
        assert stream.name == "root/net/jitter"
        assert stream.seed == 42

    def test_distinct_names_distinct_streams(self):
        a = SeededRng(42).substream("a").random()
        b = SeededRng(42).substream("b").random()
        assert a != b

    def test_same_name_same_stream(self):
        first = [SeededRng(42).substream("x").random() for _ in range(3)]
        again = [SeededRng(42).substream("x").random() for _ in range(3)]
        assert first == again


class TestGoldenDraws:
    """Literal draw sequences for a few (seed, substream) pairs."""

    def test_root_uniform_floats(self):
        rng = SeededRng(42)
        draws = [rng.random() for _ in range(5)]
        assert draws == pytest.approx([
            0.931942108072, 0.755228822589, 0.53133706424,
            0.37288623538, 0.975650165236,
        ], abs=1e-12)

    def test_net_substream_randints(self):
        rng = SeededRng(42).substream("net")
        assert [rng.randint(0, 999) for _ in range(5)] == \
            [244, 87, 372, 271, 392]

    def test_nested_substream_uniform(self):
        rng = SeededRng(42).substream("net").substream("jitter")
        draws = [rng.uniform(-1, 1) for _ in range(4)]
        assert draws == pytest.approx([
            0.08210127634, -0.94337725514,
            -0.875173044463, -0.409203968666,
        ], abs=1e-12)

    def test_expovariate_seed_seven(self):
        rng = SeededRng(7)
        draws = [rng.expovariate(2.0) for _ in range(3)]
        assert draws == pytest.approx([
            0.413879781186, 0.40113183432, 0.219980344066,
        ], abs=1e-12)

    def test_gauss_workload_substream(self):
        rng = SeededRng(123).substream("workload")
        draws = [rng.gauss(0, 1) for _ in range(3)]
        assert draws == pytest.approx([
            -0.064514740827, 0.157682930389, 0.363138136096,
        ], abs=1e-12)

    def test_choice_sequence(self):
        rng = SeededRng(42).substream("choice")
        assert [rng.choice(["a", "b", "c", "d"]) for _ in range(6)] == \
            ["a", "b", "d", "b", "b", "b"]

    def test_shuffle_permutation(self):
        rng = SeededRng(42).substream("shuffle")
        sequence = list(range(8))
        rng.shuffle(sequence)
        assert sequence == [4, 3, 0, 7, 1, 2, 6, 5]

    def test_sample_without_replacement(self):
        rng = SeededRng(42).substream("sample")
        assert rng.sample(range(100), 5) == [6, 47, 63, 17, 70]


class TestIsolation:
    """Adding a consumer must not perturb existing streams — the whole
    point of named substreams."""

    def test_sibling_substream_draws_do_not_interleave(self):
        parent = SeededRng(42)
        a = parent.substream("a")
        before = [a.random() for _ in range(3)]
        parent2 = SeededRng(42)
        b = parent2.substream("b")  # new consumer appears first
        [b.random() for _ in range(10)]
        a2 = parent2.substream("a")
        after = [a2.random() for _ in range(3)]
        assert before == after

    def test_parent_draws_do_not_shift_substreams(self):
        parent = SeededRng(42)
        [parent.random() for _ in range(100)]
        late = parent.substream("net")
        fresh = SeededRng(42).substream("net")
        assert [late.randint(0, 999) for _ in range(5)] == \
            [fresh.randint(0, 999) for _ in range(5)]
