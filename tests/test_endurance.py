"""Tests for flash endurance and bad-block retirement.

End-of-life semantics: worn blocks retire (capacity shrinks); once too
little reclaimable space remains, writers fail fast with CapacityError —
but everything already written stays readable (the device goes
effectively read-only), which is how real SSDs die.
"""

import pytest

from repro.flash import FlashChip, FlashDevice, FlashGeometry, WearOutError
from repro.ftl import CapacityError, GenericFTL, MFTLBackend
from repro.sim import Simulator
from repro.versioning import Version


GEOM = FlashGeometry(page_size=4096, pages_per_block=4, num_blocks=16,
                     num_channels=2)


class TestChipEndurance:
    def test_unlimited_by_default(self):
        chip = FlashChip(GEOM)
        for _ in range(100):
            chip.program(0, 0, "x")
            chip.erase(0)
        assert chip.erase_count(0) == 100
        assert not chip.is_worn(0)

    def test_wears_out_at_limit(self):
        chip = FlashChip(GEOM, endurance=3)
        for _ in range(3):
            chip.program(0, 0, "x")
            chip.erase(0)
        assert chip.is_worn(0)
        chip.program(0, 0, "final")
        with pytest.raises(WearOutError):
            chip.erase(0)
        # Data written before wear-out remains readable.
        assert chip.read(0, 0) == "final"

    def test_invalid_endurance(self):
        with pytest.raises(ValueError):
            FlashChip(GEOM, endurance=0)


class TestGenericFTLEndOfLife:
    def test_retirement_then_readonly_death(self):
        sim = Simulator()
        device = FlashDevice(sim, GEOM, endurance=4)
        ftl = GenericFTL(sim, device)
        latest = {}

        def churn():
            for i in range(GEOM.total_pages * 8):
                lba = i % 6
                yield ftl.write(lba, f"v{i}")
                latest[lba] = f"v{i}"

        proc = sim.process(churn())
        with pytest.raises(CapacityError):
            sim.run_until_event(proc)
        assert len(ftl.bad_blocks) > 0
        # Every acknowledged write remains readable on the dead device.
        for lba, expected in latest.items():
            assert sim.run_until_event(ftl.read(lba)) == expected
        # Retired blocks never returned to the free pool.
        for block in ftl.bad_blocks:
            assert not ftl._allocator.is_free(block)

    def test_budget_mostly_spent_before_death(self):
        """Wear-aware GC should extract most of the aggregate erase
        budget before the device dies."""
        sim = Simulator()
        device = FlashDevice(sim, GEOM, endurance=5)
        ftl = GenericFTL(sim, device)

        def churn():
            for i in range(GEOM.total_pages * 10):
                yield ftl.write(i % 6, f"v{i}")

        with pytest.raises(CapacityError):
            sim.run_until_event(sim.process(churn()))
        budget = GEOM.num_blocks * 5
        spent = sum(device.chip.wear_counters())
        assert spent > 0.6 * budget, (
            f"device died after only {spent}/{budget} erases — wear "
            "leveling ineffective")


class TestMFTLEndOfLife:
    def test_retirement_then_readonly_death(self):
        sim = Simulator()
        device = FlashDevice(sim, GEOM, endurance=4)
        backend = MFTLBackend(sim, device, packing_delay=0.1e-3)
        latest = {}

        def churn():
            timestamp = 0.0
            for i in range(6000):
                key = f"k{i % 6}"
                timestamp += 1.0
                yield backend.put(key, f"v{i}", Version(timestamp, 1))
                latest[key] = (Version(timestamp, 1), f"v{i}")
                backend.set_watermark(timestamp - 3.0)

        proc = sim.process(churn())
        with pytest.raises(CapacityError):
            sim.run_until_event(proc)
        assert len(backend.bad_blocks) > 0
        # All acknowledged writes remain readable.
        for key, (version, value) in latest.items():
            assert sim.run_until_event(backend.get(key)) == \
                (version, value)

    def test_no_endurance_never_retires(self):
        sim = Simulator()
        device = FlashDevice(sim, GEOM)  # unlimited endurance
        backend = MFTLBackend(sim, device, packing_delay=0.1e-3)

        def churn():
            timestamp = 0.0
            for i in range(2000):
                timestamp += 1.0
                yield backend.put(f"k{i % 6}", i, Version(timestamp, 1))
                backend.set_watermark(timestamp - 3.0)

        sim.run_until_event(sim.process(churn()))
        assert backend.bad_blocks == set()
