"""Tests for the distributed lock service (MILANA-backed)."""

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.services import DistributedLockService


def make_cluster(num_clients=3, **overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3,
                    num_clients=num_clients, backend="dram",
                    clock_preset="ptp-sw", seed=167, populate_keys=0)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestBasicLocking:
    def test_acquire_and_release(self):
        cluster = make_cluster()
        service = DistributedLockService(cluster.clients[0], ttl=0.5)
        sim = cluster.sim

        def work():
            handle = yield service.acquire("db-migration")
            assert handle is not None
            owner = yield service.holder("db-migration")
            assert owner == cluster.clients[0].name
            released = yield service.release(handle)
            assert released is True
            owner = yield service.holder("db-migration")
            return owner

        assert sim.run_until_event(sim.process(work())) is None

    def test_second_acquire_blocked_while_held(self):
        cluster = make_cluster()
        a = DistributedLockService(cluster.clients[0], ttl=0.5)
        b = DistributedLockService(cluster.clients[1], ttl=0.5)
        sim = cluster.sim

        def work():
            handle = yield a.acquire("resource")
            assert handle is not None
            other = yield b.acquire("resource")
            return other

        assert sim.run_until_event(sim.process(work())) is None

    def test_release_requires_ownership(self):
        cluster = make_cluster()
        a = DistributedLockService(cluster.clients[0], ttl=0.5)
        b = DistributedLockService(cluster.clients[1], ttl=0.5)
        sim = cluster.sim

        def work():
            real = yield a.acquire("thing")
            from repro.services import LockHandle
            forged = LockHandle(name="thing",
                                owner=cluster.clients[1].name,
                                expires=real.expires)
            stolen = yield b.release(forged)
            still = yield b.holder("thing")
            return stolen, still

        stolen, still = sim.run_until_event(sim.process(work()))
        assert stolen is False
        assert still == cluster.clients[0].name

    def test_invalid_ttl(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            DistributedLockService(cluster.clients[0], ttl=0)


class TestLeases:
    def test_expired_lock_claimable(self):
        cluster = make_cluster()
        a = DistributedLockService(cluster.clients[0], ttl=0.05)
        b = DistributedLockService(cluster.clients[1], ttl=0.05)
        sim = cluster.sim

        def work():
            handle = yield a.acquire("flaky-holder")
            assert handle is not None
            # Holder "dies": never renews. Wait out the lease.
            yield sim.timeout(0.1)
            takeover = yield b.acquire("flaky-holder")
            return takeover

        takeover = sim.run_until_event(sim.process(work()))
        assert takeover is not None
        assert takeover.owner == cluster.clients[1].name

    def test_renew_extends_lease(self):
        cluster = make_cluster()
        a = DistributedLockService(cluster.clients[0], ttl=0.08)
        b = DistributedLockService(cluster.clients[1], ttl=0.08)
        sim = cluster.sim

        def work():
            handle = yield a.acquire("kept-alive")
            for _ in range(4):
                yield sim.timeout(0.05)
                handle = yield a.renew(handle)
                assert handle is not None
            # 200ms elapsed > original ttl, but renewals kept it ours.
            other = yield b.acquire("kept-alive")
            return other

        assert sim.run_until_event(sim.process(work())) is None

    def test_renew_after_takeover_fails(self):
        cluster = make_cluster()
        a = DistributedLockService(cluster.clients[0], ttl=0.05)
        b = DistributedLockService(cluster.clients[1], ttl=0.5)
        sim = cluster.sim

        def work():
            stale = yield a.acquire("contested")
            yield sim.timeout(0.1)              # lease expires
            takeover = yield b.acquire("contested")
            assert takeover is not None
            revived = yield a.renew(stale)
            return revived

        assert sim.run_until_event(sim.process(work())) is None


class TestMutualExclusion:
    def test_racing_acquirers_get_exactly_one_winner(self):
        cluster = make_cluster(num_clients=6)
        services = [DistributedLockService(client, ttl=1.0)
                    for client in cluster.clients]
        sim = cluster.sim
        winners = []

        def racer(service):
            handle = yield service.acquire("golden-ticket")
            if handle is not None:
                winners.append(handle.owner)

        procs = [sim.process(racer(service)) for service in services]
        for proc in procs:
            sim.run_until_event(proc)
        assert len(winners) == 1

    def test_critical_section_never_overlaps(self):
        """The classic test: concurrent workers increment a counter under
        the lock; no update is ever lost."""
        cluster = make_cluster(num_clients=4)
        services = [DistributedLockService(client, ttl=1.0)
                    for client in cluster.clients]
        sim = cluster.sim
        in_section = [0]
        max_concurrency = [0]
        completed = [0]

        def worker(service, rounds):
            done = 0
            while done < rounds:
                handle = yield service.acquire("mutex")
                if handle is None:
                    yield sim.timeout(2e-3)
                    continue
                in_section[0] += 1
                max_concurrency[0] = max(max_concurrency[0],
                                         in_section[0])
                yield sim.timeout(1e-3)       # the critical section
                in_section[0] -= 1
                yield service.release(handle)
                done += 1
                completed[0] += 1

        procs = [sim.process(worker(service, 5))
                 for service in services]
        for proc in procs:
            sim.run_until_event(proc)
        assert completed[0] == 20
        assert max_concurrency[0] == 1, (
            f"critical section overlapped: {max_concurrency[0]}")
