"""Tier-1 gate + unit tests for the simlint static analyzer.

The headline test runs the analyzer over the real ``src/repro`` tree and
asserts zero non-baselined findings — injecting a ``time.time()`` into
any sim module makes this test (and ``python -m repro.analysis``) fail.
The rest exercises every rule on positive/negative/suppressed fixtures,
the baseline round-trip, and the JSON output schema.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import SYNTAX_RULE_ID, all_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE_FILE = REPO_ROOT / "simlint-baseline.json"


def run_on(tmp_path, source, name="snippet.py", **kwargs):
    """Analyze one fixture file; returns the findings list."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    findings, files = analyze_paths([str(path)], **kwargs)
    assert files == 1
    return findings


def rule_ids(findings):
    return [f.rule_id for f in findings]


# -- the tier-1 gate -------------------------------------------------------


class TestRepoIsClean:
    def test_src_repro_has_zero_findings(self):
        findings, files = analyze_paths([str(SRC)])
        baseline = Baseline.load(BASELINE_FILE)
        new, _ = baseline.split(findings)
        assert files > 80
        assert new == [], "\n".join(f.render() for f in new)

    def test_checked_in_baseline_is_near_empty(self):
        # Repo policy: fix findings, don't bank them. Allow a little
        # slack for future grandfathering, but not silent rot.
        assert len(Baseline.load(BASELINE_FILE)) <= 5

    def test_cli_exits_zero_on_repo(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC)],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_injected_wall_clock_read_is_caught(self, tmp_path):
        """The acceptance scenario: a time.time() slipped into sim/core.py."""
        victim = tmp_path / "sim" / "core.py"
        victim.parent.mkdir(parents=True)
        original = (SRC / "sim" / "core.py").read_text()
        assert "time.time()" not in original
        tampered = original.replace(
            "import heapq",
            "import heapq\nimport time", 1).replace(
            "self._now = float(start_time)",
            "self._now = time.time()", 1)
        assert tampered != original
        victim.write_text(tampered)
        findings, _ = analyze_paths([str(victim)])
        assert "DET001" in rule_ids(findings)


# -- per-rule fixtures -----------------------------------------------------


class TestDet001WallClock:
    def test_positive_time_time(self, tmp_path):
        findings = run_on(tmp_path, """\
            import time
            def stamp():
                return time.time()
            """)
        assert rule_ids(findings) == ["DET001"]

    def test_positive_from_import_and_alias(self, tmp_path):
        findings = run_on(tmp_path, """\
            from time import perf_counter
            import time as t
            def stamp():
                return perf_counter() + t.monotonic()
            """)
        assert rule_ids(findings) == ["DET001", "DET001"]

    def test_positive_datetime_now(self, tmp_path):
        findings = run_on(tmp_path, """\
            from datetime import datetime
            def stamp():
                return datetime.now()
            """)
        assert rule_ids(findings) == ["DET001"]

    def test_negative_sim_now(self, tmp_path):
        findings = run_on(tmp_path, """\
            def stamp(sim):
                return sim.now
            """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        findings = run_on(tmp_path, """\
            import time
            def stamp():
                return time.time()  # simlint: disable=DET001
            """)
        assert findings == []


class TestDet002DirectRandom:
    def test_positive_import_and_call(self, tmp_path):
        findings = run_on(tmp_path, """\
            import random
            def draw():
                return random.random()
            """)
        assert rule_ids(findings) == ["DET002", "DET002"]

    def test_positive_from_import(self, tmp_path):
        findings = run_on(tmp_path, """\
            from random import randint
            """)
        assert rule_ids(findings) == ["DET002"]

    def test_negative_seeded_rng(self, tmp_path):
        findings = run_on(tmp_path, """\
            def draw(rng):
                return rng.substream("jitter").random()
            """)
        assert findings == []

    def test_rng_module_itself_is_exempt(self):
        findings, _ = analyze_paths([str(SRC / "sim" / "rng.py")],
                                    select=["DET002"])
        assert findings == []

    def test_file_level_suppression(self, tmp_path):
        findings = run_on(tmp_path, """\
            # simlint: disable-file=DET002
            import random
            """)
        assert findings == []


class TestDet003UnorderedIteration:
    def test_positive_set_call(self, tmp_path):
        findings = run_on(tmp_path, """\
            def fanout(replicas):
                for r in set(replicas):
                    yield r
            """)
        assert rule_ids(findings) == ["DET003"]

    def test_positive_set_literal_and_comprehension(self, tmp_path):
        findings = run_on(tmp_path, """\
            def shards(a, b):
                xs = [s for s in {a, b}]
                ys = list(x for x in {n for n in a})
                return xs, ys
            """)
        assert rule_ids(findings) == ["DET003", "DET003"]

    def test_positive_set_method(self, tmp_path):
        findings = run_on(tmp_path, """\
            def diff(a, b):
                for key in a.difference(b):
                    print(key)
            """)
        assert rule_ids(findings) == ["DET003"]

    def test_negative_sorted_wrapper(self, tmp_path):
        findings = run_on(tmp_path, """\
            def fanout(replicas):
                for r in sorted(set(replicas)):
                    yield r
            """)
        assert findings == []

    def test_negative_dict_iteration_is_ordered(self, tmp_path):
        findings = run_on(tmp_path, """\
            def walk(table):
                for key, value in table.items():
                    yield key, value
            """)
        assert findings == []


class TestDet004EnvironmentReads:
    def test_positive_uuid_and_urandom(self, tmp_path):
        findings = run_on(tmp_path, """\
            import os, uuid
            def ident():
                return uuid.uuid4(), os.urandom(8)
            """)
        assert rule_ids(findings) == ["DET004", "DET004"]

    def test_positive_os_environ(self, tmp_path):
        findings = run_on(tmp_path, """\
            import os
            def config():
                return os.environ["SEED"], os.getenv("MODE")
            """)
        assert sorted(rule_ids(findings)) == ["DET004", "DET004"]

    def test_negative_explicit_seed(self, tmp_path):
        findings = run_on(tmp_path, """\
            def ident(rng, counter):
                return f"txn-{counter}-{rng.randint(0, 2**31)}"
            """)
        assert findings == []


class TestSim001Blocking:
    def test_positive_sleep_in_generator(self, tmp_path):
        findings = run_on(tmp_path, """\
            import time
            def proc(sim):
                time.sleep(0.1)
                yield sim.timeout(0.1)
            """)
        assert rule_ids(findings) == ["SIM001"]

    def test_positive_open_in_generator(self, tmp_path):
        findings = run_on(tmp_path, """\
            def proc(sim):
                handle = open("trace.log")
                yield sim.timeout(1)
                return handle
            """)
        assert rule_ids(findings) == ["SIM001"]

    def test_negative_open_outside_generator(self, tmp_path):
        findings = run_on(tmp_path, """\
            def write_report(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """)
        assert findings == []

    def test_negative_sim_timeout(self, tmp_path):
        findings = run_on(tmp_path, """\
            def proc(sim):
                yield sim.timeout(0.1)
            """)
        assert findings == []


class TestRpc001Timeouts:
    def test_positive_bare_call(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node, request):
                reply = yield node.call("dst", "m.ping", request)
                return reply
            """)
        assert rule_ids(findings) == ["RPC001"]

    def test_positive_self_node(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Client:
                def send(self, request):
                    return self.node.call("dst", "m.ping", request,
                                          retries=2)
            """)
        assert rule_ids(findings) == ["RPC001"]

    def test_negative_keyword_timeout(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node, request):
                yield node.call("dst", "m.ping", request, timeout=5e-3)
            """)
        assert findings == []

    def test_negative_positional_timeout(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node, request):
                yield node.call("dst", "m.ping", request, 5e-3)
            """)
        assert findings == []

    def test_positive_replicate_without_timeout(self, tmp_path):
        findings = run_on(tmp_path, """\
            from repro.semel.replication import replicate_to_backups
            def push(node, backups, payload):
                yield from replicate_to_backups(
                    node, backups, "m.put", payload, 2)
            """)
        assert rule_ids(findings) == ["RPC001"]

    def test_negative_unrelated_call_method(self, tmp_path):
        findings = run_on(tmp_path, """\
            def invoke(handler):
                return handler.call("anything")
            """)
        assert findings == []


class TestWire001Payloads:
    def test_positive_dict_literal_in_call(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node):
                yield node.call("dst", "m.ping", {"key": "k"},
                                timeout=5e-3)
            """)
        assert rule_ids(findings) == ["WIRE001"]

    def test_positive_dict_literal_in_send_oneway(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node):
                node.send_oneway("dst", "m.tick", {"now": 1.0})
            """)
        assert rule_ids(findings) == ["WIRE001"]

    def test_positive_dict_comprehension_payload(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node, keys):
                node.send_oneway("dst", "m.bulk",
                                 {k: 1 for k in keys})
            """)
        assert rule_ids(findings) == ["WIRE001"]

    def test_positive_payload_keyword(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node):
                yield node.call("dst", "m.ping", timeout=5e-3,
                                payload={"key": "k"})
            """)
        assert rule_ids(findings) == ["WIRE001"]

    def test_positive_replicate_to_backups(self, tmp_path):
        findings = run_on(tmp_path, """\
            from repro.semel.replication import replicate_to_backups
            def push(node, backups):
                yield from replicate_to_backups(
                    node, backups, "m.put", {"key": "k"}, 2,
                    timeout=5e-3)
            """)
        assert rule_ids(findings) == ["WIRE001"]

    def test_negative_message_object_payload(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node, request):
                yield node.call("dst", "m.ping", request, timeout=5e-3)
            """)
        assert findings == []

    def test_negative_unrelated_receiver(self, tmp_path):
        findings = run_on(tmp_path, """\
            def invoke(handler):
                return handler.call("dst", "m.ping", {"key": "k"})
            """)
        assert findings == []

    def test_suppression_comment(self, tmp_path):
        findings = run_on(tmp_path, """\
            def send(node):
                node.send_oneway(
                    "dst", "m.tick",
                    {"now": 1.0})  # simlint: disable=WIRE001
            """)
        assert findings == []


class TestTxn001YieldAtomicity:
    def test_positive_yield_between_validate_and_record(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Server:
                def _handle_prepare(self, record):
                    result = validate(record, self.key_states)
                    yield from self._replicate(record)
                    self.txn_table[record.txn_id] = record
                    return result
            """, name="milana/server_like.py")
        assert rule_ids(findings) == ["TXN001"]

    def test_positive_mark_prepared_after_yield(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Server:
                def _handle_prepare(self, record):
                    result = validate(record, self.key_states)
                    yield self.backend.put(record)
                    self.key_states.mark_prepared(record.key,
                                                  record.txn_id, 1.0)
            """, name="milana/server_like.py")
        assert rule_ids(findings) == ["TXN001"]

    def test_negative_record_before_yield(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Server:
                def _handle_prepare(self, record):
                    result = validate(record, self.key_states)
                    self.txn_table[record.txn_id] = record
                    yield from self._replicate(record)
                    return result
            """, name="milana/server_like.py")
        assert findings == []

    def test_negative_revalidation_after_yield(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Server:
                def _handle_prepare(self, record):
                    result = validate(record, self.key_states)
                    yield from self._replicate(record)
                    result = validate(record, self.key_states)
                    self.txn_table[record.txn_id] = record
                    return result
            """, name="milana/server_like.py")
        assert findings == []

    def test_rule_is_scoped_to_milana(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Server:
                def _handle_prepare(self, record):
                    result = validate(record, self.key_states)
                    yield from self._replicate(record)
                    self.txn_table[record.txn_id] = record
            """, name="elsewhere/server_like.py")
        assert findings == []


class TestApi001DunderAll:
    def test_positive_ghost_name(self, tmp_path):
        findings = run_on(tmp_path, """\
            __all__ = ["missing"]
            """)
        assert rule_ids(findings) == ["API001"]

    def test_positive_unexported_public_def(self, tmp_path):
        findings = run_on(tmp_path, """\
            __all__ = []
            def helper():
                return 1
            """)
        assert rule_ids(findings) == ["API001"]

    def test_negative_consistent(self, tmp_path):
        findings = run_on(tmp_path, """\
            from typing import Dict
            __all__ = ["Thing", "CONSTANT", "TABLE"]
            CONSTANT = 1
            TABLE: Dict[str, int] = {}
            class Thing:
                pass
            def _private():
                pass
            """)
        assert findings == []

    def test_negative_module_without_all(self, tmp_path):
        findings = run_on(tmp_path, """\
            def helper():
                return 1
            """)
        assert findings == []


class TestFlt001CrashStatePoke:
    def test_positive_direct_mutation(self, tmp_path):
        findings = run_on(tmp_path, """\
            def sabotage(network, name):
                network._crashed.add(name)
            """)
        assert rule_ids(findings) == ["FLT001"]

    def test_positive_direct_read(self, tmp_path):
        findings = run_on(tmp_path, """\
            def peek(cluster, name):
                return name in cluster.network._crashed
            """)
        assert rule_ids(findings) == ["FLT001"]

    def test_negative_fault_api(self, tmp_path):
        findings = run_on(tmp_path, """\
            def fail(network, name):
                network.crash(name)
                return network.is_crashed(name)
            """)
        assert findings == []

    def test_rule_skips_the_network_module(self, tmp_path):
        findings = run_on(tmp_path, """\
            class Network:
                def crash(self, name):
                    self._crashed.add(name)
            """, name="net/network.py")
        assert findings == []


class TestPar001ParallelismHygiene:
    def test_positive_os_fork(self, tmp_path):
        findings = run_on(tmp_path, """\
            import os
            def spawn_worker():
                return os.fork()
            """)
        assert rule_ids(findings) == ["PAR001"]

    def test_positive_get_context_default(self, tmp_path):
        findings = run_on(tmp_path, """\
            import multiprocessing
            def context():
                return multiprocessing.get_context()
            """)
        assert rule_ids(findings) == ["PAR001"]

    def test_positive_fork_start_method(self, tmp_path):
        findings = run_on(tmp_path, """\
            from multiprocessing import get_context
            def context():
                return get_context("fork")
            """)
        assert rule_ids(findings) == ["PAR001"]

    def test_negative_spawn_context(self, tmp_path):
        findings = run_on(tmp_path, """\
            from multiprocessing import get_context
            def context():
                return get_context("spawn")
            """)
        assert findings == []

    def test_positive_executor_without_mp_context(self, tmp_path):
        findings = run_on(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor
            def pool(jobs):
                return ProcessPoolExecutor(max_workers=jobs)
            """)
        assert rule_ids(findings) == ["PAR001"]

    def test_negative_executor_with_mp_context(self, tmp_path):
        findings = run_on(tmp_path, """\
            from concurrent.futures import ProcessPoolExecutor
            from multiprocessing import get_context
            def pool(jobs):
                return ProcessPoolExecutor(
                    max_workers=jobs, mp_context=get_context("spawn"))
            """)
        assert findings == []

    def test_positive_module_mutable_in_sweep(self, tmp_path):
        findings = run_on(tmp_path, """\
            _CACHE = {}
            def lookup(key):
                return _CACHE.get(key)
            """, name="sweep/registry.py")
        assert rule_ids(findings) == ["PAR001"]

    def test_negative_module_mutable_outside_sweep(self, tmp_path):
        findings = run_on(tmp_path, """\
            _CACHE = {}
            def lookup(key):
                return _CACHE.get(key)
            """, name="harness/registry.py")
        assert findings == []

    def test_negative_dunder_assignment_in_sweep(self, tmp_path):
        findings = run_on(tmp_path, """\
            __all__ = ["lookup"]
            def lookup(key):
                return key
            """, name="sweep/api.py")
        assert findings == []

    def test_negative_immutable_module_constant_in_sweep(self, tmp_path):
        findings = run_on(tmp_path, """\
            SCALES = ("quick", "full")
            LIMIT = 16
            def scales():
                return SCALES
            """, name="sweep/config.py")
        assert findings == []

    def test_sweep_package_itself_is_clean(self):
        findings, files = analyze_paths([str(SRC / "sweep")])
        assert files >= 5
        assert [f for f in findings if f.rule_id == "PAR001"] == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = run_on(tmp_path, "def broken(:\n")
        assert rule_ids(findings) == [SYNTAX_RULE_ID]

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            analyze_paths([str(tmp_path)], select=["NOPE99"])

    def test_select_and_ignore(self, tmp_path):
        source = """\
            import random
            __all__ = ["ghost"]
            """
        assert rule_ids(run_on(tmp_path, source,
                               select=["DET002"])) == ["DET002"]
        assert rule_ids(run_on(tmp_path, source,
                               ignore=["DET002"])) == ["API001"]

    def test_disable_all_rules_on_line(self, tmp_path):
        findings = run_on(tmp_path, """\
            import random  # simlint: disable
            """)
        assert findings == []

    def test_findings_sorted_and_deterministic(self, tmp_path):
        source = """\
            import random
            import time
            def f():
                return time.time(), random.random()
            """
        first = run_on(tmp_path, source)
        second = run_on(tmp_path, source)
        assert first == second
        assert first == sorted(first, key=lambda f: f.sort_key)

    def test_every_rule_has_id_severity_description(self):
        rules = all_rules()
        assert len(rules) >= 8
        for rule_id, r in rules.items():
            assert rule_id == r.rule_id
            assert r.severity in ("error", "warning")
            assert r.description


class TestBaseline:
    def _findings(self, tmp_path):
        return run_on(tmp_path, """\
            import random
            import time
            def f():
                return time.time()
            """)

    def test_round_trip(self, tmp_path):
        findings = self._findings(tmp_path)
        assert findings
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(baseline_path)
        reloaded = Baseline.load(baseline_path)
        new, matched = reloaded.split(findings)
        assert new == []
        assert len(matched) == len(findings)

    def test_new_finding_not_masked(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings[:1])
        new, matched = baseline.split(findings)
        assert len(matched) == 1
        assert len(new) == len(findings) - 1

    def test_duplicate_findings_consume_entries(self, tmp_path):
        findings = self._findings(tmp_path)
        doubled = findings + findings
        baseline = Baseline.from_findings(findings)
        new, matched = baseline.split(doubled)
        assert len(matched) == len(findings)
        assert len(new) == len(findings)

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"entries\": [{\"oops\": 1}], \"version\": 1}")
        with pytest.raises(ValueError):
            Baseline.load(bad)


class TestCli:
    def write_bad_file(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import random\n")
        return path

    def test_exit_codes(self, tmp_path, capsys):
        bad = self.write_bad_file(tmp_path)
        assert cli_main([str(bad)]) == 1
        capsys.readouterr()
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert cli_main([str(clean)]) == 0

    def test_json_schema(self, tmp_path, capsys):
        bad = self.write_bad_file(tmp_path)
        code = cli_main([str(bad), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["baselined"] == 0
        assert payload["counts_by_rule"] == {"DET002": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule",
                                "severity", "message", "fingerprint"}
        assert finding["rule"] == "DET002"
        assert finding["line"] == 1

    def test_baseline_flag_suppresses(self, tmp_path, capsys):
        bad = self.write_bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert cli_main([str(bad), "--write-baseline",
                         str(baseline)]) == 0
        capsys.readouterr()
        assert cli_main([str(bad), "--baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "1 baselined" in err

    def test_nonexistent_path_is_a_usage_error(self, capsys):
        # A typo'd path must not green-light CI with "0 files checked".
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["does/not/exist"])
        assert excinfo.value.code == 2
        assert "do not exist" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004",
                        "SIM001", "RPC001", "WIRE001", "TXN001",
                        "FLT001", "API001", "SUP001", "ATM001",
                        "ATM002", "PRO001", "PRO002", "PRO003",
                        "PRO004", "DET101"):
            assert rule_id in out
