"""Tests for consistent snapshot export/restore."""

import pytest

from repro.clocks import PerfectClock
from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import COMMITTED
from repro.semel import SemelClient, export_snapshot, restore_snapshot


def make_cluster(**overrides):
    defaults = dict(num_shards=2, replicas_per_shard=3, num_clients=1,
                    backend="mftl", populate_keys=60, seed=157)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def semel_client(cluster, client_id=9):
    return SemelClient(cluster.sim, cluster.network, cluster.directory,
                       PerfectClock(cluster.sim), client_id=client_id)


class TestExport:
    def test_exports_all_present_keys(self):
        cluster = make_cluster()
        client = semel_client(cluster)
        snap = cluster.sim.run_until_event(export_snapshot(
            client, cluster.populated_keys, at=cluster.sim.now))
        assert len(snap) == 60
        assert snap.value_of("key:0") == "value-of-key:0"

    def test_snapshot_is_consistent_under_concurrent_writes(self):
        """Writers racing with the export never leak newer versions into
        the snapshot."""
        cluster = make_cluster()
        milana = cluster.clients[0]
        backup_client = semel_client(cluster)
        sim = cluster.sim
        snapshot_at = sim.now

        results = {}

        def writer():
            for i in range(30):
                txn = milana.begin()
                yield milana.txn_get(txn, f"key:{i % 10}")
                milana.put(txn, f"key:{i % 10}", f"NEW-{i}")
                outcome = yield milana.commit(txn)
                assert outcome == COMMITTED
                yield sim.timeout(0.4e-3)

        def exporter():
            snap = yield export_snapshot(
                backup_client, cluster.populated_keys, at=snapshot_at,
                parallelism=4)
            results["snap"] = snap

        sim.process(writer())
        proc = sim.process(exporter())
        sim.run_until_event(proc)
        snap = results["snap"]
        assert len(snap) == 60
        for key, (version, value) in snap.entries.items():
            assert version.timestamp <= snapshot_at
            assert value == f"value-of-{key}", (
                f"{key}: snapshot leaked post-T value {value!r}")

    def test_missing_keys_absent(self):
        cluster = make_cluster()
        client = semel_client(cluster)
        snap = cluster.sim.run_until_event(export_snapshot(
            client, ["ghost-1", "key:0"], at=cluster.sim.now))
        assert "ghost-1" not in snap.entries
        assert "key:0" in snap.entries

    def test_invalid_parallelism(self):
        cluster = make_cluster()
        client = semel_client(cluster)
        proc = export_snapshot(client, ["key:0"], at=0.0, parallelism=0)
        with pytest.raises(ValueError):
            cluster.sim.run_until_event(proc)


class TestRestore:
    def test_roundtrip_into_fresh_cluster(self):
        source = make_cluster()
        client = semel_client(source)
        snap = source.sim.run_until_event(export_snapshot(
            client, source.populated_keys, at=source.sim.now))

        target = Cluster(ClusterConfig(
            num_shards=3, replicas_per_shard=1, num_clients=1,
            backend="dram", seed=163))
        restored = restore_snapshot(target, snap)
        assert restored == 60

        milana = target.clients[0]

        def check():
            values = []
            for key in ("key:0", "key:30", "key:59"):
                txn = milana.begin()
                values.append((yield milana.txn_get(txn, key)))
                yield milana.commit(txn)
            return values

        target.sim.run(until=snap.timestamp + 1e-3)
        values = target.sim.run_until_event(
            target.sim.process(check()))
        assert values == ["value-of-key:0", "value-of-key:30",
                          "value-of-key:59"]
