"""Tests for static wear leveling."""

import pytest

from repro.flash import FlashDevice, FlashGeometry
from repro.ftl import MFTLBackend, StaticWearLeveler
from repro.sim import Simulator
from repro.versioning import Version


GEOM = FlashGeometry(page_size=4096, pages_per_block=4, num_blocks=16,
                     num_channels=2)


def cold_hot_churn(sim, backend, rounds):
    """Cold keys written once; hot keys rewritten constantly."""
    def workload():
        timestamp = 0.0
        # Cold data fills a few blocks and is never touched again.
        for i in range(40):
            timestamp += 1.0
            yield backend.put(f"cold{i}", f"c{i}", Version(timestamp, 1))
        for i in range(rounds):
            timestamp += 1.0
            yield backend.put(f"hot{i % 4}", f"h{i}",
                              Version(timestamp, 1))
            backend.set_watermark(timestamp - 3.0)

    return sim.process(workload())


class TestStaticWearLeveler:
    def test_validates_threshold(self):
        sim = Simulator()
        backend = MFTLBackend(sim, FlashDevice(sim, GEOM))
        with pytest.raises(ValueError):
            StaticWearLeveler(backend, threshold=0)

    def test_reduces_wear_spread(self):
        def spread(with_leveler):
            sim = Simulator()
            device = FlashDevice(sim, GEOM)
            backend = MFTLBackend(sim, device, packing_delay=0.1e-3)
            if with_leveler:
                StaticWearLeveler(backend, threshold=4,
                                  interval=5e-3).start()
            proc = cold_hot_churn(sim, backend, rounds=3000)
            sim.run_until_event(proc)
            wears = device.chip.wear_counters()
            return max(wears) - min(wears)

        unleveled = spread(with_leveler=False)
        leveled = spread(with_leveler=True)
        assert leveled < unleveled, (
            f"leveler did not reduce wear spread: {leveled} vs "
            f"{unleveled}")

    def test_migrations_preserve_cold_data(self):
        sim = Simulator()
        device = FlashDevice(sim, GEOM)
        backend = MFTLBackend(sim, device, packing_delay=0.1e-3)
        leveler = StaticWearLeveler(backend, threshold=4, interval=5e-3)
        leveler.start()
        sim.run_until_event(cold_hot_churn(sim, backend, rounds=3000))
        assert leveler.migrations > 0
        for i in range(40):
            result = sim.run_until_event(backend.get(f"cold{i}"))
            assert result is not None and result[1] == f"c{i}"

    def test_idle_device_never_migrates(self):
        sim = Simulator()
        backend = MFTLBackend(sim, FlashDevice(sim, GEOM))
        leveler = StaticWearLeveler(backend, interval=5e-3)
        leveler.start()
        sim.run(until=0.2)
        assert leveler.migrations == 0
