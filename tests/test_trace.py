"""Tests for the tracing subsystem."""

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import COMMITTED
from repro.sim import Simulator, Tracer


class TestTracer:
    def test_record_and_render(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.run(until=1.5e-3)
        tracer.record("gc", "collect", victim=7)
        assert len(tracer) == 1
        text = tracer.render()
        assert "[gc] collect" in text
        assert "victim=7" in text
        assert "1.5000ms" in text

    def test_category_filter(self):
        sim = Simulator()
        tracer = Tracer(sim, categories={"rpc"})
        tracer.record("rpc", "kept")
        tracer.record("gc", "dropped")
        assert [r.message for r in tracer.records()] == ["kept"]
        assert not tracer.wants("gc")

    def test_no_filter_traces_everything(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "x")
        tracer.record("b", "y")
        assert len(tracer) == 2

    def test_ring_buffer_bounds(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=5)
        for i in range(12):
            tracer.record("t", f"m{i}")
        assert len(tracer) == 5
        assert tracer.dropped == 7
        assert [r.message for r in tracer.records()] == \
            [f"m{i}" for i in range(7, 12)]

    def test_records_query(self):
        sim = Simulator()
        tracer = Tracer(sim)
        for i in range(6):
            tracer.record("even" if i % 2 == 0 else "odd", f"m{i}")
        assert len(tracer.records(category="even")) == 3
        assert [r.message for r in tracer.records(last=2)] == ["m4", "m5"]

    def test_clear(self):
        sim = Simulator()
        tracer = Tracer(sim, capacity=2)
        tracer.record("t", "a")
        tracer.record("t", "b")
        tracer.record("t", "c")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), capacity=0)


class TestProtocolTracing:
    def test_transaction_leaves_rpc_trace(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=1,
            backend="dram", populate_keys=5, seed=127))
        tracer = Tracer(cluster.sim, categories={"rpc"})
        cluster.network.tracer = tracer
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            client.put(txn, "key:0", "traced")
            return (yield client.commit(txn))

        assert cluster.sim.run_until_event(
            cluster.sim.process(work())) == COMMITTED
        # The decide notification is asynchronous; let it land.
        cluster.sim.run(until=cluster.sim.now + 0.01)
        methods = [record.fields.get("method")
                   for record in tracer.records(category="rpc")]
        assert "milana.get" in methods
        assert "milana.prepare" in methods
        assert "milana.decide" in methods

    def test_net_category_sees_drops(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=1,
            backend="dram", populate_keys=5, seed=131))
        tracer = Tracer(cluster.sim, categories={"net"})
        cluster.network.tracer = tracer
        cluster.fail_server("srv-0-1")
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            client.put(txn, "key:0", "x")
            return (yield client.commit(txn))

        cluster.sim.run_until_event(cluster.sim.process(work()))
        cluster.sim.run(until=cluster.sim.now + 0.02)
        drops = [record for record in tracer.records(category="net")
                 if record.message == "drop"]
        assert drops, "messages to the crashed backup must trace as drops"
