"""Unit and property tests for clock synchronization models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import (
    CLOCK_PRESETS,
    ClockEnsemble,
    NTPClock,
    NTP_MEAN_SKEW,
    PTP_SOFTWARE_MEAN_SKEW,
    PTPClock,
    PerfectClock,
    SyncedClock,
    make_clock,
    max_pairwise_skew,
    mean_pairwise_skew,
)
from repro.sim import SeededRng, Simulator


class TestPerfectClock:
    def test_tracks_true_time(self):
        sim = Simulator()
        clock = PerfectClock(sim)
        sim.run(until=5.0)
        assert clock.now() == pytest.approx(5.0)
        assert clock.offset() == 0.0


class TestSyncedClock:
    def test_offset_bounded_by_residual_and_drift(self):
        sim = Simulator()
        rng = SeededRng(3)
        clock = SyncedClock(sim, rng, residual_std=1e-4, drift_ppm=10,
                            sync_interval=2.0)
        worst = 0.0
        for step in range(200):
            sim.run(until=(step + 1) * 0.05)
            worst = max(worst, abs(clock.offset()))
        # 6 sigma of residual + worst-case drift accumulation over 2s.
        assert worst < 6 * 1e-4 + 10e-6 * 2.0

    def test_monotonic_across_sync_rounds(self):
        sim = Simulator()
        rng = SeededRng(11)
        clock = SyncedClock(sim, rng, residual_std=5e-3, drift_ppm=100,
                            sync_interval=0.5)
        last = clock.now()
        for step in range(500):
            sim.run(until=(step + 1) * 0.01)
            reading = clock.now()
            assert reading > last
            last = reading

    def test_residual_redrawn_each_round(self):
        sim = Simulator()
        rng = SeededRng(5)
        clock = SyncedClock(sim, rng, residual_std=1e-3, drift_ppm=0,
                            sync_interval=1.0, phase=0.0)
        offsets = set()
        for step in range(10):
            sim.run(until=step + 0.5)
            offsets.add(round(clock.offset(), 9))
        assert len(offsets) > 5

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        rng = SeededRng(0)
        with pytest.raises(ValueError):
            SyncedClock(sim, rng, residual_std=-1.0)
        with pytest.raises(ValueError):
            SyncedClock(sim, rng, residual_std=1.0, sync_interval=0.0)

    def test_deterministic_for_seed(self):
        readings = []
        for _ in range(2):
            sim = Simulator()
            clock = SyncedClock(sim, SeededRng(42), residual_std=1e-4)
            run = []
            for step in range(20):
                sim.run(until=(step + 1) * 0.3)
                run.append(clock.now())
            readings.append(run)
        assert readings[0] == readings[1]


class TestCalibration:
    @staticmethod
    def _measured_mean_skew(clock_factory, n_clients=40, samples=50):
        sim = Simulator()
        rng = SeededRng(123)
        clocks = [clock_factory(sim, rng.substream(f"c{i}"), f"c{i}")
                  for i in range(n_clients)]
        total = 0.0
        for step in range(samples):
            sim.run(until=(step + 1) * 1.7)
            total += mean_pairwise_skew(clocks)
        return total / samples

    def test_ptp_software_mean_skew_matches_paper(self):
        measured = self._measured_mean_skew(
            lambda sim, rng, name: PTPClock(sim, rng, name=name))
        assert measured == pytest.approx(PTP_SOFTWARE_MEAN_SKEW, rel=0.25)

    def test_ntp_mean_skew_matches_paper(self):
        measured = self._measured_mean_skew(
            lambda sim, rng, name: NTPClock(sim, rng, name=name))
        assert measured == pytest.approx(NTP_MEAN_SKEW, rel=0.25)

    def test_ntp_skew_much_larger_than_ptp(self):
        ptp = self._measured_mean_skew(
            lambda sim, rng, name: PTPClock(sim, rng, name=name),
            n_clients=10, samples=20)
        ntp = self._measured_mean_skew(
            lambda sim, rng, name: NTPClock(sim, rng, name=name),
            n_clients=10, samples=20)
        assert ntp > 10 * ptp


class TestPresetsAndEnsemble:
    def test_all_presets_construct(self):
        sim = Simulator()
        rng = SeededRng(1)
        for preset in CLOCK_PRESETS:
            clock = make_clock(preset, sim, rng.substream(preset), preset)
            assert clock.now() is not None

    def test_unknown_preset_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="unknown clock preset"):
            make_clock("sundial", sim, SeededRng(0), "x")

    def test_ensemble_memoizes_per_node(self):
        sim = Simulator()
        ensemble = ClockEnsemble(sim, SeededRng(9), preset="ptp-sw")
        a1 = ensemble.clock_for("node-a")
        a2 = ensemble.clock_for("node-a")
        b = ensemble.clock_for("node-b")
        assert a1 is a2
        assert a1 is not b
        assert len(ensemble.clocks) == 2

    def test_ensemble_clocks_independent_of_creation_order(self):
        def offsets(order):
            sim = Simulator()
            ensemble = ClockEnsemble(sim, SeededRng(77), preset="ntp")
            clocks = {name: ensemble.clock_for(name) for name in order}
            sim.run(until=1.0)
            return {name: clock.offset() for name, clock in clocks.items()}

        first = offsets(["a", "b", "c"])
        second = offsets(["c", "a", "b"])
        assert first == second

    def test_skew_helpers(self):
        sim = Simulator()
        clocks = [PerfectClock(sim) for _ in range(3)]
        assert mean_pairwise_skew(clocks) == 0.0
        assert max_pairwise_skew(clocks) == 0.0
        assert mean_pairwise_skew(clocks[:1]) == 0.0


class TestMonotonicityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        residual_us=st.floats(min_value=0.0, max_value=5000.0),
        steps=st.integers(min_value=2, max_value=60),
    )
    def test_readings_strictly_increase(self, seed, residual_us, steps):
        sim = Simulator()
        clock = SyncedClock(
            sim, SeededRng(seed), residual_std=residual_us * 1e-6,
            drift_ppm=100, sync_interval=0.25)
        previous = clock.now()
        for step in range(steps):
            sim.run(until=(step + 1) * 0.1)
            current = clock.now()
            assert current > previous
            previous = current

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_offset_is_finite(self, seed):
        sim = Simulator()
        clock = NTPClock(sim, SeededRng(seed))
        sim.run(until=3.0)
        assert math.isfinite(clock.offset())
