"""Failure handling tests: Algorithm 2 recovery, CTP, and leases (§4.5)."""

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import (
    ABORTED,
    COMMITTED,
    PREPARED,
    LeaseManager,
    RecoveryError,
    TransactionRecord,
    merge_records,
    recover_primary,
)
from repro.wire import TxnRecordWire


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=2,
                    backend="dram", clock_preset="perfect", seed=9,
                    populate_keys=16)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


def run(cluster, process):
    return cluster.sim.run_until_event(process)


def wire(txn_id, status, writes=(), participants=("shard0",),
         ts_commit=5.0, client_id=1):
    return TxnRecordWire.from_record(TransactionRecord(
        txn_id=txn_id, client_id=client_id, client_name="c",
        ts_commit=ts_commit, reads=[], writes=list(writes),
        participants=list(participants), status=status))


class TestMergeRecords:
    def test_committed_beats_prepared(self):
        merged = merge_records([
            [wire("t1", PREPARED)],
            [wire("t1", COMMITTED)],
        ])
        assert merged["t1"].status == COMMITTED

    def test_aborted_beats_prepared(self):
        merged = merge_records([
            [wire("t1", ABORTED)],
            [wire("t1", PREPARED)],
        ])
        assert merged["t1"].status == ABORTED

    def test_union_of_disjoint_logs(self):
        merged = merge_records([
            [wire("t1", COMMITTED)],
            [wire("t2", PREPARED)],
        ])
        assert set(merged) == {"t1", "t2"}

    def test_order_of_logs_irrelevant(self):
        logs = [[wire("t1", COMMITTED)], [wire("t1", PREPARED)]]
        a = merge_records(logs)
        b = merge_records(list(reversed(logs)))
        assert a["t1"].status == b["t1"].status == COMMITTED


class TestPrimaryFailover:
    def _commit_some(self, cluster, client, n=5):
        def work():
            for i in range(n):
                txn = client.begin()
                yield client.txn_get(txn, f"key:{i}")
                client.put(txn, f"key:{i}", f"gen2-{i}")
                outcome = yield client.commit(txn)
                assert outcome == COMMITTED
                yield cluster.sim.timeout(1e-3)
        run(cluster, cluster.sim.process(work()))
        cluster.sim.run(until=cluster.sim.now + 5e-3)

    def test_failover_preserves_committed_data(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        self._commit_some(cluster, client)

        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-1")
        new_primary = cluster.servers["srv-0-1"]
        run(cluster, recover_primary(new_primary, lease_wait=20e-3))

        def check():
            values = []
            for i in range(5):
                txn = client.begin()
                value = yield client.txn_get(txn, f"key:{i}")
                yield client.commit(txn)
                values.append(value)
            return values

        values = run(cluster, cluster.sim.process(check()))
        assert values == [f"gen2-{i}" for i in range(5)]

    def test_new_primary_rejects_until_lease_passes(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        self._commit_some(cluster, client, n=1)
        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-1")
        recovery = recover_primary(
            cluster.servers["srv-0-1"], lease_wait=50e-3)
        # Transactions during the lease window abort (server refuses).
        outcomes = []

        def during_recovery():
            yield cluster.sim.timeout(5e-3)
            txn = client.begin()
            try:
                yield client.txn_get(txn, "key:0")
                outcomes.append((yield client.commit(txn)))
            except Exception:
                client.abort(txn, "server recovering")
                outcomes.append("REFUSED")

        proc = cluster.sim.process(during_recovery())
        run(cluster, proc)
        assert outcomes == ["REFUSED"]
        run(cluster, recovery)

        def after():
            txn = client.begin()
            value = yield client.txn_get(txn, "key:0")
            yield client.commit(txn)
            return value

        assert run(cluster, cluster.sim.process(after())) == "gen2-0"

    def test_recovery_fails_without_majority(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        self._commit_some(cluster, client, n=1)
        cluster.fail_server("srv-0-0")
        cluster.fail_server("srv-0-2")
        cluster.directory.promote("shard0", "srv-0-1")

        def attempt():
            try:
                yield recover_primary(cluster.servers["srv-0-1"],
                                      lease_wait=1e-3)
            except RecoveryError as exc:
                return str(exc)

        result = run(cluster, cluster.sim.process(attempt()))
        assert "majority" in result

    def test_single_shard_prepared_txn_commits_on_recovery(self):
        """A prepared single-participant transaction must commit during
        the merge (Algorithm 2 line 6-7)."""
        cluster = make_cluster()
        client = cluster.clients[0]

        # Manufacture a prepared-but-undecided txn by injecting the
        # prepare records directly (as if the client died mid-2PC).
        record = TransactionRecord(
            txn_id="orphan", client_id=9, client_name="ghost",
            ts_commit=cluster.sim.now + 1e-3, reads=[],
            writes=[("key:0", "orphan-write")], participants=["shard0"],
            status=PREPARED)
        for name in ("srv-0-0", "srv-0-1", "srv-0-2"):
            cluster.servers[name].txn_table["orphan"] = \
                TransactionRecord.from_wire(record.to_wire())

        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-2")
        run(cluster, recover_primary(cluster.servers["srv-0-2"],
                                     lease_wait=10e-3))
        assert cluster.servers["srv-0-2"].txn_table["orphan"].status == \
            COMMITTED

        def check():
            txn = client.begin()
            value = yield client.txn_get(txn, "key:0")
            yield client.commit(txn)
            return value

        assert run(cluster, cluster.sim.process(check())) == "orphan-write"

    def test_multi_shard_prepared_commits_when_other_committed(self):
        cluster = make_cluster(num_shards=2, populate_keys=30)
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")

        record = TransactionRecord(
            txn_id="xshard", client_id=9, client_name="ghost",
            ts_commit=cluster.sim.now + 1.0, reads=[],
            writes=[(key0, "xshard-write")],
            participants=["shard0", "shard1"], status=PREPARED)
        for replica in cluster.directory.shard("shard0").replicas:
            cluster.servers[replica].txn_table["xshard"] = \
                TransactionRecord.from_wire(record.to_wire())
        # shard1's primary saw the commit decision.
        other = TransactionRecord.from_wire(record.to_wire())
        other.writes = []
        other.status = COMMITTED
        shard1_primary = cluster.directory.shard("shard1").primary
        cluster.servers[shard1_primary].txn_table["xshard"] = other

        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-1")
        run(cluster, recover_primary(cluster.servers["srv-0-1"],
                                     lease_wait=10e-3))
        assert cluster.servers["srv-0-1"].txn_table["xshard"].status == \
            COMMITTED

    def test_multi_shard_prepared_aborts_when_other_unknown(self):
        cluster = make_cluster(num_shards=2, populate_keys=30)
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")
        record = TransactionRecord(
            txn_id="never-prepared-elsewhere", client_id=9,
            client_name="ghost", ts_commit=cluster.sim.now + 1.0,
            reads=[], writes=[(key0, "should-not-land")],
            participants=["shard0", "shard1"], status=PREPARED)
        for replica in cluster.directory.shard("shard0").replicas:
            cluster.servers[replica].txn_table[record.txn_id] = \
                TransactionRecord.from_wire(record.to_wire())

        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-1")
        run(cluster, recover_primary(cluster.servers["srv-0-1"],
                                     lease_wait=10e-3))
        assert cluster.servers["srv-0-1"].txn_table[record.txn_id].status \
            == ABORTED
        client = cluster.clients[0]

        def check():
            txn = client.begin()
            value = yield client.txn_get(txn, key0)
            yield client.commit(txn)
            return value

        assert run(cluster, cluster.sim.process(check())) != \
            "should-not-land"


class TestDecideLostMidPartition:
    """Satellite of the nemesis PR: the coordinator's decide was lost in
    a partition; the healed shard must resolve its in-doubt records
    without losing the committed transaction."""

    def _seed_in_doubt_commit(self, cluster):
        """Shard1 learned COMMITTED (and applied the write); shard0's
        replicas all hold PREPARED — exactly what a decide lost on the
        wire leaves behind."""
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")
        key1 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard1")
        ts = cluster.sim.now + 1e-3
        record = TransactionRecord(
            txn_id="in-doubt", client_id=9, client_name="ghost",
            ts_commit=ts, reads=[], writes=[(key0, "survives")],
            participants=["shard0", "shard1"], status=PREPARED,
            prepared_at=cluster.sim.now)
        for replica in cluster.directory.shard("shard0").replicas:
            server = cluster.servers[replica]
            server.txn_table["in-doubt"] = \
                TransactionRecord.from_wire(record.to_wire())
        primary0 = cluster.directory.shard("shard0").primary
        cluster.servers[primary0].key_states.mark_prepared(
            key0, "in-doubt", ts)
        other = TransactionRecord.from_wire(record.to_wire())
        other.writes = [(key1, "survives-too")]
        other.status = COMMITTED
        primary1 = cluster.directory.shard("shard1").primary
        cluster.servers[primary1].txn_table["in-doubt"] = other
        return key0

    def test_healed_primary_resolves_in_doubt_without_losing_commit(self):
        """The shard0 primary dies during the partition; its successor
        cannot reach shard1 while recovering, so the record stays
        in-doubt — then the partition heals and CTP must commit it."""
        cluster = make_cluster(num_shards=2, populate_keys=30,
                               ctp_timeout=20e-3)
        key0 = self._seed_in_doubt_commit(cluster)

        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-1")
        new_primary = cluster.servers["srv-0-1"]
        faults = cluster.network.install_faults()
        primary1 = cluster.directory.shard("shard1").primary
        faults.block_pair("srv-0-1", primary1)
        run(cluster, recover_primary(new_primary, lease_wait=10e-3))
        # Unreachable peer: recovery must keep it PREPARED, not guess.
        assert new_primary.txn_table["in-doubt"].status == PREPARED

        faults.heal()
        cluster.sim.run(until=cluster.sim.now + 0.2)
        assert new_primary.txn_table["in-doubt"].status == COMMITTED
        assert new_primary.key_states.peek(key0).prepared is None

        client = cluster.clients[0]

        def check():
            txn = client.begin()
            value = yield client.txn_get(txn, key0)
            yield client.commit(txn)
            return value

        assert run(cluster, cluster.sim.process(check())) == "survives"

    def test_recovery_propagates_decision_to_other_participant(self):
        """Algorithm 2's all-prepared branch commits; with reliable
        decide delivery the other participant's primary must end up
        COMMITTED too, not stranded PREPARED behind a lost oneway."""
        cluster = make_cluster(num_shards=2, populate_keys=30)
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")
        key1 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard1")
        ts = cluster.sim.now + 1e-3
        record = TransactionRecord(
            txn_id="outstanding", client_id=9, client_name="ghost",
            ts_commit=ts, reads=[],
            writes=[(key0, "w0")],
            participants=["shard0", "shard1"], status=PREPARED,
            prepared_at=cluster.sim.now)
        for replica in cluster.directory.shard("shard0").replicas:
            cluster.servers[replica].txn_table["outstanding"] = \
                TransactionRecord.from_wire(record.to_wire())
        peer = TransactionRecord.from_wire(record.to_wire())
        peer.writes = [(key1, "w1")]
        primary1 = cluster.directory.shard("shard1").primary
        server1 = cluster.servers[primary1]
        server1.txn_table["outstanding"] = peer
        server1.key_states.mark_prepared(key1, "outstanding", ts)

        cluster.fail_server("srv-0-0")
        cluster.directory.promote("shard0", "srv-0-1")
        run(cluster, recover_primary(cluster.servers["srv-0-1"],
                                     lease_wait=10e-3))
        cluster.sim.run(until=cluster.sim.now + 50e-3)
        assert cluster.servers["srv-0-1"].txn_table[
            "outstanding"].status == COMMITTED
        assert server1.txn_table["outstanding"].status == COMMITTED
        assert server1.key_states.peek(key1).prepared is None


class TestCooperativeTermination:
    def test_ctp_commits_orphan_prepared_txn(self):
        """All participants prepared, client vanished: CTP rule 4."""
        cluster = make_cluster(num_shards=2, populate_keys=30,
                               ctp_timeout=20e-3)
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")
        key1 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard1")

        ts = cluster.sim.now + 1e-3
        for shard_name, key in (("shard0", key0), ("shard1", key1)):
            record = TransactionRecord(
                txn_id="orphan2", client_id=9, client_name="ghost",
                ts_commit=ts, reads=[], writes=[(key, "ctp-commit")],
                participants=["shard0", "shard1"], status=PREPARED,
                prepared_at=cluster.sim.now)
            primary = cluster.directory.shard(shard_name).primary
            server = cluster.servers[primary]
            server.txn_table["orphan2"] = record
            server.key_states.mark_prepared(key, "orphan2", ts)

        cluster.sim.run(until=cluster.sim.now + 0.2)
        for shard_name in ("shard0", "shard1"):
            primary = cluster.directory.shard(shard_name).primary
            assert cluster.servers[primary].txn_table["orphan2"].status \
                == COMMITTED
        total_resolutions = sum(s.ctp_resolutions
                                for s in cluster.servers.values())
        assert total_resolutions >= 1

    def test_ctp_aborts_when_participant_never_prepared(self):
        """Client died between prepares: CTP rule 2."""
        cluster = make_cluster(num_shards=2, populate_keys=30,
                               ctp_timeout=20e-3)
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")
        ts = cluster.sim.now + 1e-3
        record = TransactionRecord(
            txn_id="half-prepared", client_id=9, client_name="ghost",
            ts_commit=ts, reads=[], writes=[(key0, "half")],
            participants=["shard0", "shard1"], status=PREPARED,
            prepared_at=cluster.sim.now)
        primary = cluster.directory.shard("shard0").primary
        server = cluster.servers[primary]
        server.txn_table["half-prepared"] = record
        server.key_states.mark_prepared(key0, "half-prepared", ts)

        cluster.sim.run(until=cluster.sim.now + 0.2)
        assert server.txn_table["half-prepared"].status == ABORTED
        # The prepared mark is gone, so new transactions can write key0.
        assert server.key_states.peek(key0).prepared is None

    def test_blocked_key_unblocks_after_ctp(self):
        cluster = make_cluster(num_shards=2, populate_keys=30,
                               ctp_timeout=15e-3)
        client = cluster.clients[0]
        key0 = next(k for k in cluster.populated_keys
                    if cluster.directory.shard_of(k).name == "shard0")
        ts = cluster.sim.now + 1e-3
        record = TransactionRecord(
            txn_id="blocker", client_id=9, client_name="ghost",
            ts_commit=ts, reads=[], writes=[(key0, "blocked")],
            participants=["shard0", "shard1"], status=PREPARED,
            prepared_at=cluster.sim.now)
        primary = cluster.directory.shard("shard0").primary
        server = cluster.servers[primary]
        server.txn_table["blocker"] = record
        server.key_states.mark_prepared(key0, "blocker", ts)

        def conflicting():
            txn = client.begin()
            yield client.txn_get(txn, key0)
            client.put(txn, key0, "mine")
            return (yield client.commit(txn))

        # While blocked: abort.
        assert run(cluster, cluster.sim.process(conflicting())) == ABORTED
        # After CTP resolves it: commit.
        cluster.sim.run(until=cluster.sim.now + 0.2)

        def retry():
            txn = client.begin()
            yield client.txn_get(txn, key0)
            client.put(txn, key0, "mine")
            return (yield client.commit(txn))

        assert run(cluster, cluster.sim.process(retry())) == COMMITTED


class TestLeases:
    def test_lease_renewal(self):
        cluster = make_cluster()
        primary = cluster.servers["srv-0-0"]
        manager = LeaseManager(primary, duration=50e-3, interval=10e-3)
        manager.start()
        cluster.sim.run(until=cluster.sim.now + 0.1)
        assert manager.held
        assert manager.renewals >= 5
        for backup_name in ("srv-0-1", "srv-0-2"):
            assert "srv-0-0" in cluster.servers[backup_name].granted_leases

    def test_lease_lost_without_backups(self):
        cluster = make_cluster()
        primary = cluster.servers["srv-0-0"]
        manager = LeaseManager(primary, duration=40e-3, interval=10e-3)
        manager.start()
        cluster.sim.run(until=cluster.sim.now + 0.05)
        assert manager.held
        cluster.fail_server("srv-0-1")
        cluster.fail_server("srv-0-2")
        cluster.sim.run(until=cluster.sim.now + 0.2)
        assert not manager.held
        assert manager.renewal_failures > 0

    def test_invalid_parameters(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            LeaseManager(cluster.servers["srv-0-0"],
                         duration=10e-3, interval=20e-3)

    def test_lapsed_lease_blocks_reads(self):
        """§4.5: a primary serves gets only while it holds the lease.

        With both backups down, renewals fail, the lease lapses, and
        transactional reads are refused until the backups return."""
        cluster = make_cluster()
        client = cluster.clients[0]
        primary = cluster.servers["srv-0-0"]
        manager = LeaseManager(primary, duration=40e-3, interval=10e-3)
        manager.start()
        cluster.sim.run(until=0.05)

        def read_one():
            txn = client.begin()
            try:
                yield client.txn_get(txn, "key:0")
            except Exception as exc:
                client.abort(txn, "lease")
                return f"refused: {exc}"
            yield client.commit(txn)
            return "served"

        assert cluster.sim.run_until_event(
            cluster.sim.process(read_one())) == "served"

        cluster.fail_server("srv-0-1")
        cluster.fail_server("srv-0-2")
        cluster.sim.run(until=cluster.sim.now + 0.2)
        assert not manager.held
        result = cluster.sim.run_until_event(
            cluster.sim.process(read_one()))
        assert result.startswith("refused")

        cluster.unpause_server("srv-0-1")
        cluster.unpause_server("srv-0-2")
        cluster.sim.run(until=cluster.sim.now + 0.1)
        assert manager.held
        assert cluster.sim.run_until_event(
            cluster.sim.process(read_one())) == "served"
