"""Tests for the experiment harness: cluster builder, metrics, reports."""

import pytest

from repro.harness import (
    Cluster,
    ClusterConfig,
    format_table,
    format_value,
    run_retwis_on_cluster,
    series_block,
    snapshot,
    window_metrics,
)
from repro.harness.metrics import StatsSnapshot
from repro.milana import COMMITTED


class TestClusterConfig:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(backend="tape")

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_shards=0)

    def test_defaults_construct(self):
        cluster = Cluster(ClusterConfig(populate_keys=10))
        assert len(cluster.clients) == 4
        assert len(cluster.servers) == 3


class TestClusterBuild:
    def test_topology_matches_config(self):
        cluster = Cluster(ClusterConfig(
            num_shards=2, replicas_per_shard=3, num_clients=5,
            backend="dram"))
        assert len(cluster.servers) == 6
        assert len(cluster.clients) == 5
        assert cluster.directory.shard_names == ["shard0", "shard1"]

    def test_populate_reaches_all_replicas_of_owner_shard(self):
        cluster = Cluster(ClusterConfig(
            num_shards=2, replicas_per_shard=2, num_clients=1,
            backend="dram", populate_keys=40))
        for key in cluster.populated_keys:
            shard = cluster.directory.shard_of(key)
            for replica in shard.replicas:
                assert cluster.servers[replica].backend.contains(key)

    def test_flash_backends_get_devices(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, backend="mftl",
            populate_keys=50))
        assert len(cluster.devices) == 1
        server = next(iter(cluster.servers.values()))
        assert server.backend.contains("key:0")

    def test_sftl_backend_is_single_version(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, backend="sftl",
            populate_keys=10))
        server = next(iter(cluster.servers.values()))
        assert server.backend.multi_version is False

    def test_clock_preset_applies_to_clients(self):
        cluster = Cluster(ClusterConfig(
            num_clients=3, clock_preset="ntp", populate_keys=5))
        cluster.sim.run(until=1.0)
        offsets = [abs(c.clock.offset()) for c in cluster.clients]
        assert max(offsets) > 1e-5, "NTP clients should have visible skew"

    def test_total_stats_aggregates(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=1,
            backend="dram", populate_keys=5))
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            outcome = yield client.commit(txn)
            return outcome

        assert cluster.sim.run_until_event(
            cluster.sim.process(work())) == COMMITTED
        stats = cluster.total_stats()
        assert stats["committed"] == 1
        assert stats["abort_rate"] == 0.0


class TestMetrics:
    def _snap(self, time, committed, aborted, latency):
        return StatsSnapshot(
            time=time, started=committed + aborted, committed=committed,
            aborted=aborted, latency_total=latency,
            latency_committed_total=latency, local_validations=0,
            remote_validations=0)

    def test_window_diff(self):
        before = self._snap(1.0, 10, 2, 0.012)
        after = self._snap(3.0, 40, 12, 0.052)
        window = window_metrics(before, after)
        assert window.duration == 2.0
        assert window.committed == 30
        assert window.aborted == 10
        assert window.throughput == 15.0
        assert window.abort_rate == 0.25
        assert window.mean_latency == pytest.approx(0.04 / 40)

    def test_empty_window(self):
        snap = self._snap(1.0, 5, 5, 0.1)
        window = window_metrics(snap, snap)
        assert window.throughput == 0.0
        assert window.abort_rate == 0.0
        assert window.mean_latency == 0.0

    def test_snapshot_of_real_clients(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=2,
            backend="dram", populate_keys=5))
        snap = snapshot(cluster.sim.now, cluster.clients)
        assert snap.committed == 0
        assert snap.started == 0


class TestRunner:
    def test_retwis_run_produces_metrics(self):
        config = ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=3,
            backend="dram", populate_keys=100, seed=31)
        result = run_retwis_on_cluster(
            config, alpha=0.5, duration=0.1, warmup=0.02)
        assert result.metrics.committed > 0
        assert result.throughput > 0
        assert 0.0 <= result.abort_rate < 1.0
        assert result.mean_latency > 0

    def test_mix_override(self):
        from repro.workloads import RETWIS_MIX_75_READONLY
        config = ClusterConfig(
            num_shards=1, replicas_per_shard=1, num_clients=2,
            backend="dram", populate_keys=100, seed=31)
        result = run_retwis_on_cluster(
            config, alpha=0.3, duration=0.1, warmup=0.02,
            mix=RETWIS_MIX_75_READONLY)
        counts = {}
        for instance in result.instances:
            for name, count in instance.stats.by_type.items():
                counts[name] = counts.get(name, 0) + count
        total = sum(counts.values())
        assert counts.get("get_timeline", 0) / total > 0.55


class TestReport:
    def test_format_value_scales(self):
        assert format_value(1234.5) == "1,234"
        assert format_value(12.345) == "12.35"
        assert format_value(0.5) == "0.5"
        assert format_value(42e-6) == "42.0u"
        assert format_value(3e-9) == "3.0n"
        assert format_value(0) == "0"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.0], ["beta", 22.5]],
                            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_series_block(self):
        text = series_block("ptp", [0.4, 0.8], [0.1, 0.2],
                            x_label="alpha", y_label="aborts")
        assert text.startswith("ptp [alpha -> aborts]:")
        assert "(0.4, 0.1)" in text


class TestRackAwareCluster:
    def test_replicas_spread_and_latencies_differ(self):
        cluster = Cluster(ClusterConfig(
            num_shards=2, replicas_per_shard=3, num_clients=3,
            backend="dram", populate_keys=20, rack_aware=True))
        topo = cluster.topology
        assert topo is not None
        shard = cluster.directory.shard("shard0")
        racks = {topo.rack_of(replica) for replica in shard.replicas}
        assert len(racks) == 3, "replicas must land in distinct racks"
        assert cluster.network.topology is topo

    def test_transactions_work_rack_aware(self):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=1,
            backend="dram", populate_keys=10, rack_aware=True))
        client = cluster.clients[0]

        def work():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            client.put(txn, "key:0", "across-racks")
            return (yield client.commit(txn))

        assert cluster.sim.run_until_event(
            cluster.sim.process(work())) == COMMITTED

    def test_cross_rack_commit_slower_than_flat_lan(self):
        def commit_latency(rack_aware):
            cluster = Cluster(ClusterConfig(
                num_shards=1, replicas_per_shard=3, num_clients=1,
                backend="dram", populate_keys=10, seed=151,
                rack_aware=rack_aware, network_jitter_fraction=0.0,
                network_base_latency=20e-6))
            client = cluster.clients[0]

            def work():
                t0 = cluster.sim.now
                txn = client.begin()
                yield client.txn_get(txn, "key:0")
                client.put(txn, "key:0", "x")
                yield client.commit(txn)
                return cluster.sim.now - t0

            return cluster.sim.run_until_event(
                cluster.sim.process(work()))

        # The backup quorum hop crosses racks (80us vs 20us one-way).
        assert commit_latency(True) > commit_latency(False)
