"""Golden schedule-fingerprint tests gating kernel optimisations.

The fixtures in ``tests/fixtures/fingerprints.json`` were captured from
the pre-optimisation kernel (PR 5). Any change to the simulation kernel,
network, or protocol layers that alters a default-config schedule —
commit timestamps, abort outcomes, latency sums, message counts — flips
a fingerprint and fails here. Performance work must keep these
byte-identical; see docs/PERFORMANCE.md for the full rule and for what
to do when a schedule change is *intended* (regenerate the fixture in
its own commit with an explanation).
"""

import json
import os

import pytest

from repro.bench.fingerprint import (
    FINGERPRINT_KINDS,
    fingerprint_material,
    schedule_fingerprint,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "fingerprints.json")


def _golden():
    with open(FIXTURE) as handle:
        return json.load(handle)


class TestGoldenFingerprints:
    def test_fixture_covers_every_kind(self):
        assert sorted(_golden()) == sorted(FINGERPRINT_KINDS)

    @pytest.mark.parametrize("kind", FINGERPRINT_KINDS)
    def test_schedule_is_byte_identical_to_golden(self, kind):
        golden = _golden()
        got = schedule_fingerprint(kind)
        assert got == golden[kind], (
            f"{kind} schedule fingerprint drifted from the golden "
            f"fixture: the kernel no longer produces the same event "
            f"schedule. Diff fingerprint_material({kind!r}) against a "
            f"known-good checkout to find what moved.")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fingerprint kind"):
            fingerprint_material("nonesuch")

    def test_material_is_canonical_json(self):
        material = fingerprint_material("retwis")
        dumped = json.dumps(material, sort_keys=True,
                            separators=(",", ":"))
        assert len(dumped) > 100
        # Floats travel as repr() strings so the canonical form never
        # depends on json float formatting.
        assert material["now"] == repr(float(material["now"]))


class TestDurabilityZeroCostSeam:
    """Durability must stay opt-in so the golden fingerprints above keep
    gating the kernel with WALs disabled.

    The durability layer (PR 8) hooks the SEMEL/MILANA hot paths behind
    ``if self.wal is not None`` guards. These tests pin the seam shut by
    default: were ``ClusterConfig.durability`` ever to grow a non-None
    default, every fingerprinted run would start charging fsync latency
    and the golden fixtures would mask the regression as mere "intended
    schedule drift". The byte-identical guarantee itself is enforced by
    ``TestGoldenFingerprints`` — the fixtures were captured before the
    durability layer existed, so any default-config schedule perturbation
    from the WAL hooks fails there."""

    def test_cluster_config_defaults_to_no_durability(self):
        from repro.harness.cluster import ClusterConfig
        field = ClusterConfig.__dataclass_fields__["durability"]
        assert field.default is None

    def test_fingerprint_clusters_carry_no_wal(self):
        from repro.bench.fingerprint import _default_config
        from repro.harness.cluster import Cluster

        config = _default_config()
        assert config.durability is None
        cluster = Cluster(config)
        assert all(server.wal is None
                   for server in cluster.servers.values())
