"""Tier-1 tests for the deterministic parallel sweep runner.

The contract under test: for any ``-j`` value and any cache state, a
sweep's merged report is **byte-identical** to the serial run — workers
race only for completion order, which the canonical-order merge
discards. The cheap hidden ``selftest`` sweep keeps the parallel
determinism tests fast; one real (tiny) figure-1 sweep pins merge
equality against the serial harness driver.
"""

import json

import pytest

from repro.harness import run_figure1
from repro.sweep import (
    CellCache,
    SweepWorkerError,
    code_fingerprint,
    default_jobs,
    run_cell,
    run_sweep,
    sweep_cells,
    sweep_experiment,
    sweep_names,
)

# ---------------------------------------------------------------------------
# Cell enumeration
# ---------------------------------------------------------------------------


class TestCellEnumeration:
    def test_canonical_order_and_indices(self):
        cells = sweep_cells("figure8", scale="quick")
        assert [cell.index for cell in cells] == list(range(len(cells)))
        # Canonical order is the serial driver's loop nesting:
        # backend-major, then local-validation, then client count.
        assert cells[0].label.startswith("dram/LV")
        assert all(cell.sweep == "figure8" for cell in cells)

    def test_full_grid_is_superset_scale(self):
        quick = sweep_cells("figure7", scale="quick")
        full = sweep_cells("figure7", scale="full")
        assert len(full) > len(quick)

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            sweep_cells("figure99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            sweep_cells("figure8", scale="medium")

    def test_unknown_override_rejected(self):
        # Typos must not silently shrink a sweep.
        with pytest.raises(ValueError, match="unknown sweep override"):
            sweep_cells("figure8", client_count=(8,))

    def test_sweep_names_hides_selftest(self):
        names = sweep_names()
        assert "selftest" not in names
        assert "figure8" in names
        assert "selftest" in sweep_names(include_hidden=True)

    def test_cells_are_picklable_and_hashable(self):
        import pickle

        cells = sweep_cells("selftest")
        assert len({hash(cell) for cell in cells}) == len(cells)
        clone = pickle.loads(pickle.dumps(cells[0]))
        assert clone == cells[0]


# ---------------------------------------------------------------------------
# Parallel determinism: byte-identical reports across -j values
# ---------------------------------------------------------------------------


class TestParallelDeterminism:
    def test_report_identical_across_j1_j2_j4(self):
        reports = {}
        for jobs in (1, 2, 4):
            result = run_sweep("selftest", jobs=jobs)
            assert result.jobs == jobs
            reports[jobs] = result.report_json()
        assert reports[1] == reports[2]
        assert reports[1] == reports[4]

    def test_render_identical_serial_vs_parallel(self):
        serial = run_sweep("selftest", jobs=1).render()
        parallel = run_sweep("selftest", jobs=2).render()
        assert serial == parallel

    def test_results_arrive_in_canonical_order(self):
        result = run_sweep("selftest", jobs=2)
        assert [r.index for r in result.results] == [0, 1, 2, 3]

    def test_default_jobs_is_at_least_one(self):
        assert default_jobs() >= 1


class TestMergeMatchesSerialDriver:
    def test_figure1_sweep_equals_driver(self):
        grid = dict(write_latencies=(0.2e-6,), skews=(0.0, 1e-6),
                    rounds=10, seed=3)
        merged = sweep_experiment("figure1", jobs=1, **grid)
        serial = run_figure1(**grid)
        assert merged.render() == serial.render()
        assert merged.rows == serial.rows
        assert merged.series == serial.series


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


class TestCellCache:
    def test_cold_then_warm_accounting(self, tmp_path):
        cache = CellCache(str(tmp_path / "cache"))
        cold = run_sweep("selftest", cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(cold.results)
        warm = run_sweep("selftest", cache=cache)
        assert warm.cache_hits == len(warm.results)
        assert warm.cache_misses == 0
        assert warm.hit_rate == 1.0

    def test_cached_report_is_byte_identical(self, tmp_path):
        cache = CellCache(str(tmp_path / "cache"))
        cold = run_sweep("selftest", cache=cache)
        warm = run_sweep("selftest", cache=cache)
        assert cold.report_json() == warm.report_json()

    def test_config_change_misses(self, tmp_path):
        cache = CellCache(str(tmp_path / "cache"))
        run_sweep("selftest", cache=cache)
        changed = run_sweep("selftest", cache=cache,
                            overrides={"seed": 2})
        assert changed.cache_hits == 0

    def test_code_fingerprint_change_invalidates(self, tmp_path):
        root = str(tmp_path / "cache")
        run_sweep("selftest", cache=CellCache(root))
        stale = CellCache(root, code_fp="f" * 64)
        rerun = run_sweep("selftest", cache=stale)
        assert rerun.cache_hits == 0
        assert rerun.cache_misses == len(rerun.results)

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        cache = CellCache(str(tmp_path / "cache"))
        run_sweep("selftest", cache=cache)
        refreshed = run_sweep("selftest", cache=cache, refresh=True)
        assert refreshed.cache_hits == 0
        # The overwritten entries still serve the next run.
        warm = run_sweep("selftest", cache=cache)
        assert warm.cache_hits == len(warm.results)

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = CellCache(str(tmp_path / "cache"))
        cell = sweep_cells("selftest")[0]
        cache.put(cell, run_cell(cell))
        path = cache._path_for(cache.key_for(cell))
        path.write_text("{ torn json")
        assert cache.get(cell) is None
        assert cache.misses == 1

    def test_tampered_payload_fails_fingerprint_check(self, tmp_path):
        cache = CellCache(str(tmp_path / "cache"))
        cell = sweep_cells("selftest")[0]
        cache.put(cell, run_cell(cell))
        path = cache._path_for(cache.key_for(cell))
        entry = json.loads(path.read_text())
        entry["payload"]["rows"][0][1] = 999
        path.write_text(json.dumps(entry))
        assert cache.get(cell) is None

    def test_code_fingerprint_is_stable_hex(self):
        first = code_fingerprint()
        assert first == code_fingerprint()
        assert len(first) == 64
        int(first, 16)


# ---------------------------------------------------------------------------
# Failure surfacing
# ---------------------------------------------------------------------------


class TestWorkerFailures:
    def test_serial_failure_names_the_cell(self):
        with pytest.raises(SweepWorkerError, match=r"selftest#2"):
            run_sweep("selftest", jobs=1,
                      overrides={"fail_at": 2})

    def test_parallel_failure_names_the_cell(self):
        with pytest.raises(SweepWorkerError, match=r"selftest#2"):
            run_sweep("selftest", jobs=2,
                      overrides={"fail_at": 2})

    def test_failure_message_carries_original_error(self):
        with pytest.raises(SweepWorkerError,
                           match="ValueError.*fail_at"):
            run_sweep("selftest", overrides={"fail_at": 0})
