"""Tests for the flash chip and timed device."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    AddressError,
    FlashChip,
    FlashDevice,
    FlashGeometry,
    FlashTiming,
    ProgramError,
    ReadError,
)
from repro.sim import Simulator


SMALL = FlashGeometry(page_size=4096, pages_per_block=4, num_blocks=8,
                      num_channels=2)


class TestGeometry:
    def test_derived_quantities(self):
        geom = FlashGeometry(page_size=4096, pages_per_block=32,
                             num_blocks=100, num_channels=4)
        assert geom.total_pages == 3200
        assert geom.capacity_bytes == 3200 * 4096

    def test_channel_page_striping(self):
        geom = SMALL  # 4 pages/block, 2 channels
        assert [geom.channel_of(0, p) for p in range(4)] == [0, 1, 0, 1]
        assert [geom.channel_of(1, p) for p in range(4)] == [0, 1, 0, 1]

    def test_consecutive_pages_hit_distinct_channels(self):
        geom = FlashGeometry(page_size=4096, pages_per_block=32,
                             num_blocks=8, num_channels=8)
        channels = {geom.channel_of(0, p) for p in range(8)}
        assert len(channels) == 8

    @pytest.mark.parametrize("kwargs", [
        {"page_size": 0},
        {"pages_per_block": 0},
        {"num_blocks": 0},
        {"num_channels": 0},
        {"num_blocks": 2, "num_channels": 4},
    ])
    def test_invalid_geometry(self, kwargs):
        with pytest.raises(ValueError):
            FlashGeometry(**kwargs)

    def test_invalid_timing(self):
        with pytest.raises(ValueError):
            FlashTiming(read_page=-1.0)


class TestFlashChip:
    def test_program_then_read(self):
        chip = FlashChip(SMALL)
        chip.program(0, 0, "hello")
        assert chip.read(0, 0) == "hello"

    def test_program_same_page_twice_rejected(self):
        chip = FlashChip(SMALL)
        chip.program(0, 0, "a")
        chip.program(0, 1, "b")
        with pytest.raises(ProgramError, match="erase-before-write"):
            chip.program(0, 0, "c")

    def test_out_of_order_program_allowed_within_superblock(self):
        # Pages of a (super)block stripe across dies, so programs need not
        # land in index order; only erase-before-write is enforced.
        chip = FlashChip(SMALL)
        chip.program(0, 2, "later-page-first")
        chip.program(0, 0, "earlier-page-second")
        assert chip.read(0, 2) == "later-page-first"
        assert chip.is_programmed(0, 0)
        assert not chip.is_programmed(0, 1)

    def test_read_unprogrammed_page_rejected(self):
        chip = FlashChip(SMALL)
        with pytest.raises(ReadError):
            chip.read(0, 0)

    def test_erase_resets_pages_and_counts_wear(self):
        chip = FlashChip(SMALL)
        for page in range(SMALL.pages_per_block):
            chip.program(1, page, page)
        assert chip.programmed_pages(1) == SMALL.pages_per_block
        chip.erase(1)
        assert chip.programmed_pages(1) == 0
        assert chip.erase_count(1) == 1
        chip.program(1, 0, "fresh")
        assert chip.read(1, 0) == "fresh"

    def test_address_bounds(self):
        chip = FlashChip(SMALL)
        with pytest.raises(AddressError):
            chip.program(99, 0, "x")
        with pytest.raises(AddressError):
            chip.program(0, 99, "x")
        with pytest.raises(AddressError):
            chip.read(-1, 0)

    def test_wear_counters_track_erases(self):
        chip = FlashChip(SMALL)
        chip.program(0, 0, "x")
        chip.erase(0)
        chip.program(0, 0, "y")
        chip.erase(0)
        counters = chip.wear_counters()
        assert counters[0] == 2
        assert sum(counters) == 2

    @settings(max_examples=30, deadline=None)
    @given(writes=st.lists(
        st.integers(min_value=0, max_value=SMALL.num_blocks - 1),
        min_size=1, max_size=60))
    def test_sequential_program_invariant(self, writes):
        """However writes interleave across blocks, each block's pages are
        programmed strictly sequentially, and reads below the frontier
        always return what was written."""
        chip = FlashChip(SMALL)
        expected = {}
        frontiers = {}
        for i, block in enumerate(writes):
            frontier = frontiers.get(block, 0)
            if frontier >= SMALL.pages_per_block:
                chip.erase(block)
                expected = {
                    key: value for key, value in expected.items()
                    if key[0] != block
                }
                frontier = 0
            chip.program(block, frontier, f"data-{i}")
            frontiers[block] = frontier + 1
            expected[(block, frontier)] = f"data-{i}"
        for (block, page), value in expected.items():
            assert chip.read(block, page) == value


class TestFlashDevice:
    def test_read_latency(self):
        sim = Simulator()
        device = FlashDevice(sim, SMALL)
        results = {}

        def proc():
            yield device.write_page(0, 0, "v")
            t0 = sim.now
            value = yield device.read_page(0, 0)
            results["latency"] = sim.now - t0
            results["value"] = value

        sim.process(proc())
        sim.run()
        assert results["value"] == "v"
        assert results["latency"] == pytest.approx(device.timing.read_page)

    def test_same_channel_serializes(self):
        sim = Simulator()
        device = FlashDevice(sim, SMALL)
        done = []

        def writer(block, page):
            yield device.write_page(block, page, "x")
            done.append(sim.now)

        # page 0 of blocks 0 and 2 both map to channel 0
        sim.process(writer(0, 0))
        sim.process(writer(2, 0))
        sim.run()
        assert done == pytest.approx(
            [device.timing.write_page, 2 * device.timing.write_page])

    def test_different_channels_parallel(self):
        sim = Simulator()
        device = FlashDevice(sim, SMALL)
        done = []

        def writer(block, page):
            yield device.write_page(block, page, "x")
            done.append(sim.now)

        # consecutive pages of one block stripe across both channels;
        # issue them in frontier order in the same event step.
        sim.process(writer(0, 0))  # channel 0
        sim.process(writer(0, 1))  # channel 1
        sim.run()
        assert done == pytest.approx(
            [device.timing.write_page, device.timing.write_page])

    def test_queue_depth_bounds_inflight(self):
        sim = Simulator()
        device = FlashDevice(sim, SMALL, queue_depth=1)
        done = []

        def writer(block):
            yield device.write_page(block, 0, "x")
            done.append(sim.now)

        sim.process(writer(0))
        sim.process(writer(1))  # different channel, but queue depth 1
        sim.run()
        assert done == pytest.approx(
            [device.timing.write_page, 2 * device.timing.write_page])

    def test_stats_accumulate(self):
        sim = Simulator()
        device = FlashDevice(sim, SMALL)

        def proc():
            yield device.write_page(0, 0, "a")
            yield device.read_page(0, 0)
            for page in range(1, SMALL.pages_per_block):
                yield device.write_page(0, page, "b")
            yield device.erase_block(0)

        sim.process(proc())
        sim.run()
        assert device.stats.page_writes == SMALL.pages_per_block
        assert device.stats.page_reads == 1
        assert device.stats.block_erases == 1
        assert device.stats.total_ops == SMALL.pages_per_block + 2

    def test_erase_then_write_allows_reuse(self):
        sim = Simulator()
        device = FlashDevice(sim, SMALL)
        values = []

        def proc():
            for page in range(SMALL.pages_per_block):
                yield device.write_page(0, page, f"old-{page}")
            yield device.erase_block(0)
            yield device.write_page(0, 0, "new")
            value = yield device.read_page(0, 0)
            values.append(value)

        sim.process(proc())
        sim.run()
        assert values == ["new"]

    def test_invalid_queue_depth(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlashDevice(sim, SMALL, queue_depth=0)
