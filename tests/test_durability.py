"""Durability tests: WAL semantics, amnesia crash/restart, nemesis audits.

Three layers, matching the crash model in docs/NEMESIS.md:

* :class:`TestWriteAheadLog` — the simulated log in isolation: fsync
  points, the crash-droppable volatile tail, replay-cost accounting;
* cluster-level crash/restart — volatile state is really wiped, the
  restart protocol really replays the WAL and rejoins via Algorithm 2
  (primary) or catch-up (backup), and the legacy ``recover_server``
  resurrection is gone;
* end-to-end nemesis acceptance — the ``crash-restart`` scenario passes
  the post-heal audit with durable logging on, and the ack-before-fsync
  control demonstrably *fails* the same audit (lost acked writes), so
  the audit is known to have teeth.
"""

import pytest

from repro.durability import (
    SEMEL_PUT,
    TXN_RECORD,
    DurabilityConfig,
    WriteAheadLog,
)
from repro.harness import nemesis
from repro.harness.audit import run_audit, sync_replicas
from repro.harness.chaos import NemesisPlan
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.nemesis import nemesis_config, run_nemesis
from repro.milana import (
    COMMITTED,
    DEFAULT_CTP_TIMEOUT,
    DEFAULT_LEASE_DURATION,
    PREPARED,
    TransactionRecord,
)
from repro.milana.client import MilanaClient
from repro.sim import Simulator
from repro.wire import MilanaPrepare, TxnRecordWire


def _drain(generator):
    """Run a no-yield generator to completion and return its value."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def _history_factory(sim, network, directory, clock, client_id,
                     local_validation):
    return MilanaClient(sim, network, directory, clock,
                        client_id=client_id,
                        local_validation=local_validation,
                        record_history=True)


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=2,
                    backend="dram", clock_preset="perfect", seed=9,
                    populate_keys=32, durability=DurabilityConfig(),
                    client_factory=_history_factory)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestWriteAheadLog:
    def _wal(self, **overrides):
        sim = Simulator()
        return sim, WriteAheadLog(sim, "srv", DurabilityConfig(**overrides))

    def test_sync_append_durable_after_fsync(self):
        sim, wal = self._wal()
        proc = sim.process(wal.append(SEMEL_PUT, ("k", "v", (1.0, 1))))
        entry = sim.run_until_event(proc)
        assert entry.durable and not entry.lost
        assert sim.now == pytest.approx(wal.config.fsync_latency)
        assert wal.appends == 1 and wal.fsyncs == 1

    def test_sync_append_survives_crash(self):
        sim, wal = self._wal()
        entry = sim.run_until_event(
            sim.process(wal.append(TXN_RECORD, "decided")))
        wal.crash()
        assert not entry.lost
        assert [e.lsn for e in wal.durable_records()] == [entry.lsn]
        assert wal.crashes == 1 and wal.records_lost == 0

    def test_nosync_tail_lost_on_crash_inside_fsync_window(self):
        sim, wal = self._wal()
        entry = _drain(wal.append(TXN_RECORD, "volatile", sync=False))
        assert not entry.durable  # the caller did not wait for the fsync
        wal.crash()
        assert entry.lost and wal.records_lost == 1
        # The in-flight background fsync must not resurrect the entry.
        sim.run(until=wal.config.fsync_latency * 3)
        assert not entry.durable
        assert wal.durable_records() == []

    def test_nosync_append_survives_once_background_fsync_lands(self):
        sim, wal = self._wal()
        entry = _drain(wal.append(TXN_RECORD, "volatile", sync=False))
        sim.run(until=wal.config.fsync_latency * 2)
        assert entry.durable
        wal.crash()
        assert not entry.lost
        assert [e.lsn for e in wal.durable_records()] == [entry.lsn]

    def test_bootstrap_is_durable_and_free(self):
        sim, wal = self._wal()
        entry = wal.bootstrap_put("k", "v", (0.0, 0))
        assert entry.durable and sim.now == 0.0
        wal.crash()
        assert wal.durable_records() == [entry]

    def test_replay_delay_scales_with_durable_prefix(self):
        sim, wal = self._wal(replay_latency=3e-6)
        for i in range(5):
            wal.bootstrap(SEMEL_PUT, (f"k{i}", i, (0.0, 0)))
        assert wal.replay_delay() == pytest.approx(15e-6)
        assert wal.replay_delay(2) == pytest.approx(6e-6)

    def test_append_txn_snapshots_the_record(self):
        sim, wal = self._wal()
        record = TransactionRecord(
            txn_id="t1", client_id=1, client_name="c", ts_commit=1.0,
            reads=[], writes=[], participants=["shard0"],
            status=PREPARED)
        entry = sim.run_until_event(sim.process(wal.append_txn(record)))
        record.status = COMMITTED  # later mutation must not alias
        assert isinstance(entry.payload, TxnRecordWire)
        assert entry.payload.status == PREPARED


class TestClusterCrashRestart:
    def _commit(self, cluster, client, key, value):
        def work():
            txn = client.begin()
            yield client.txn_get(txn, key)
            client.put(txn, key, value)
            return (yield client.commit(txn))
        outcome = cluster.sim.run_until_event(cluster.sim.process(work()))
        assert outcome == COMMITTED

    def _read(self, cluster, client, key):
        def work():
            txn = client.begin()
            value = yield client.txn_get(txn, key)
            yield client.commit(txn)
            return value
        return cluster.sim.run_until_event(cluster.sim.process(work()))

    def test_primary_crash_restart_round_trip(self):
        """An acked write survives its primary's amnesia crash: WAL
        replay plus Algorithm 2 rebuild the store, and the key is
        served again once the lease wait is over."""
        cluster = make_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        key = cluster.populated_keys[0]
        self._commit(cluster, client, key, "survivor")

        cluster.crash_server("srv-0-0")
        server = cluster.servers["srv-0-0"]
        assert cluster.server_state("srv-0-0") == "crashed"
        assert server.txn_table == {}  # volatile state wiped

        proc = cluster.restart_server("srv-0-0")
        assert cluster.server_state("srv-0-0") == "recovering"
        sim.run_until_event(proc)
        assert cluster.server_state("srv-0-0") == "up"
        assert server.wal.replays == 1
        sim.run(until=sim.now + DEFAULT_LEASE_DURATION + 50e-3)
        assert self._read(cluster, client, key) == "survivor"

    def test_backup_crash_restart_catches_up(self):
        """A restarted backup pulls decided records and missed versions
        from its primary via milana.catchup."""
        cluster = make_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        key = cluster.populated_keys[0]
        cluster.crash_server("srv-0-1")
        self._commit(cluster, client, key, "missed-while-down")
        sim.run(until=sim.now + 10e-3)

        proc = cluster.restart_server("srv-0-1")
        sim.run_until_event(proc)
        primary = cluster.servers["srv-0-0"]
        backup = cluster.servers["srv-0-1"]
        assert backup.backend.versions_of(key)
        assert (backup.backend.versions_of(key)[0]
                == primary.backend.versions_of(key)[0])

    def test_pause_keeps_state_crash_wipes_it(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        key = cluster.populated_keys[0]
        self._commit(cluster, client, key, "v1")
        primary = cluster.servers["srv-0-0"]
        assert primary.txn_table

        cluster.pause_server("srv-0-0")
        assert cluster.server_state("srv-0-0") == "paused"
        assert primary.txn_table  # pause = link cut, memory intact
        cluster.unpause_server("srv-0-0")
        assert cluster.server_state("srv-0-0") == "up"
        assert primary.txn_table

        cluster.crash_server("srv-0-0")
        assert not primary.txn_table

    def test_recover_server_resurrection_is_removed(self):
        cluster = make_cluster()
        cluster.fail_server("srv-0-1")
        with pytest.raises(RuntimeError, match="no longer exists"):
            cluster.recover_server("srv-0-1")
        cluster.unpause_server("srv-0-1")  # the honest replacement

    def test_restart_guards(self):
        cluster = make_cluster()
        with pytest.raises(RuntimeError, match="not crashed"):
            cluster.restart_server("srv-0-0")
        cluster.pause_server("srv-0-1")
        with pytest.raises(RuntimeError, match="paused, not crashed"):
            cluster.restart_server("srv-0-1")
        cluster.crash_server("srv-0-2")
        with pytest.raises(RuntimeError, match="amnesia-crashed"):
            cluster.unpause_server("srv-0-2")
        with pytest.raises(RuntimeError, match="amnesia-crashed"):
            cluster.pause_server("srv-0-2")
        cluster.restart_server("srv-0-2")
        with pytest.raises(RuntimeError, match="already restarting"):
            cluster.restart_server("srv-0-2")

    def test_crash_without_wal_still_fail_stops(self):
        """Without a durability config the crash semantics are the
        same — there is simply nothing to replay, so the restarted
        server comes back empty and catches up from its shard."""
        cluster = make_cluster(durability=None)
        assert cluster.servers["srv-0-1"].wal is None
        cluster.crash_server("srv-0-1")
        proc = cluster.restart_server("srv-0-1")
        cluster.sim.run_until_event(proc)
        assert cluster.server_state("srv-0-1") == "up"


#: Who dies, and at which CTP phase boundary. Participant placements
#: bracket the prepare and decide log points on a shard primary
#: (before any prepare is logged / PREPARED logged but decide not yet /
#: decide logged); the coordinator placement silences the client after
#: a participant logged PREPARED but before the decide could be sent,
#: leaving the transaction in-doubt for CTP to terminate.
CRASH_PLACEMENTS = (
    "participant-before-prepare",
    "participant-on-prepared",
    "participant-on-committed",
    "coordinator-on-prepared",
)


class TestCrashPlacement:
    """Satellite: parametrized crash points at CTP phase boundaries.

    A monitor process watches the victim primary's transaction table and
    injects the fault at the requested phase; after restart plus a
    settle past the lease horizon and several CTP rounds, the full audit
    must pass — no acked commit lost, nothing stuck PREPARED."""

    @pytest.mark.parametrize("placement", CRASH_PLACEMENTS)
    def test_crash_at_phase_boundary(self, placement):
        config = ClusterConfig(
            num_shards=2, replicas_per_shard=3, num_clients=2,
            backend="dram", clock_preset="perfect", seed=11,
            populate_keys=64, ctp_timeout=DEFAULT_CTP_TIMEOUT,
            durability=DurabilityConfig(),
            client_factory=_history_factory)
        cluster = Cluster(config)
        sim = cluster.sim
        victim = cluster.directory.shard("shard1").primary
        server = cluster.servers[victim]

        by_shard = {}
        for key in cluster.populated_keys:
            by_shard.setdefault(cluster.directory.shard_of(key).name, key)
        key0, key1 = by_shard["shard0"], by_shard["shard1"]

        coordinator = cluster.clients[0]
        coordinator_node = f"milana-client-{coordinator.client_id}"
        crash_time = []

        def inject():
            if placement == "coordinator-on-prepared":
                cluster.network.crash(coordinator_node)
            else:
                cluster.crash_server(victim)
            crash_time.append(sim.now)

        def phase_reached():
            if placement == "coordinator-on-prepared":
                # One of the coordinator's own transactions is prepared
                # on the participant; its decide is now at risk.
                return any(rec.status == PREPARED
                           and rec.client_id == coordinator.client_id
                           for rec in server.txn_table.values())
            want = (PREPARED if placement == "participant-on-prepared"
                    else COMMITTED)
            return any(rec.status == want
                       for rec in server.txn_table.values())

        def monitor():
            if placement == "participant-before-prepare":
                yield sim.timeout(5e-3)
            else:
                while sim.now < 0.2 and not phase_reached():
                    yield sim.timeout(20e-6)
                if sim.now >= 0.2:
                    return  # never reached the phase; asserted below
            inject()

        def work(client, offset):
            # Long enough to outlast crash + restart + lease wait
            # (~150 ms), so commits land on both sides of the fault.
            committed = 0
            yield sim.timeout(offset)
            for i in range(120):
                txn = client.begin()
                try:
                    yield client.txn_get(txn, key0)
                    yield client.txn_get(txn, key1)
                    client.put(txn, key0, f"c{client.client_id}-{i}-a")
                    client.put(txn, key1, f"c{client.client_id}-{i}-b")
                    outcome = yield client.commit(txn)
                except Exception:
                    try:
                        client.abort(txn, "fault")
                    except Exception:
                        pass
                    outcome = None
                if outcome == COMMITTED:
                    committed += 1
                yield sim.timeout(2e-3)
            return committed

        def restarter():
            while not crash_time and sim.now < 0.25:
                yield sim.timeout(1e-3)
            if not crash_time:
                return None
            yield sim.timeout(30e-3)
            if placement == "coordinator-on-prepared":
                cluster.network.recover(coordinator_node)
            else:
                yield cluster.restart_server(victim)
            return sim.now

        mon = sim.process(monitor())
        restart = sim.process(restarter())
        procs = [sim.process(work(client, 1e-3 * index))
                 for index, client in enumerate(cluster.clients)]
        for proc in procs:
            sim.run_until_event(proc)
        sim.run_until_event(restart)
        assert not mon.is_alive
        assert crash_time, f"{placement}: crash point never reached"
        assert cluster.server_state(victim) == "up"
        if placement.startswith("participant"):
            assert server.wal.replays >= 1

        sim.run(until=sim.now + DEFAULT_LEASE_DURATION
                + 3 * DEFAULT_CTP_TIMEOUT + 50e-3)
        sim.run_until_event(sync_replicas(cluster))
        sim.run(until=sim.now + 20e-3)
        report = run_audit(cluster)
        assert report.passed, f"{placement}:\n{report.summary()}"
        assert report.committed_txns > 0


class TestBackgroundAppendFailure:
    """The fire-and-forget abort-path append must not be able to kill
    the simulation: nothing ever waits on the spawned process, so an
    unhandled failure inside it would propagate straight out of
    ``Simulator.run``. The server defuses it and counts it on the
    node's ``handler_errors`` instead."""

    @staticmethod
    def _prepare(txn_id, key, value, ts_commit):
        return MilanaPrepare(record=TxnRecordWire(
            txn_id=txn_id, client_id=9, client_name="tester",
            ts_commit=ts_commit, reads=(), writes=((key, value),),
            participants=("shard0",), status=PREPARED, prepared_at=0.0))

    def test_failed_abort_path_append_is_counted_not_fatal(self):
        cluster = make_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        server = cluster.servers["srv-0-0"]
        real_append = server.wal.append_txn

        def flaky_append(record, sync=True):
            if sync is not False:
                return real_append(record, sync=sync)

            def boom():
                raise RuntimeError("disk full")
                yield  # pragma: no cover - generator shape only

            return boom()

        server.wal.append_txn = flaky_append
        # Block key:0, then a conflicting prepare takes the validation
        # failure path: ABORT vote plus the background sync=False append.
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            self._prepare("blocker", "key:0", "x", sim.now + 1e-3)))
        before = server.node.handler_errors
        reply = sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            self._prepare("loser", "key:0", "y", sim.now + 2e-3)))
        assert reply.vote == "ABORT"
        # Pre-fix, the RuntimeError escapes Simulator.run before this
        # point; post-fix it lands on the handler error counter.
        sim.run(until=sim.now + 0.1)
        assert server.node.handler_errors == before + 1

    def test_healthy_abort_path_append_stays_quiet(self):
        cluster = make_cluster()
        sim = cluster.sim
        client = cluster.clients[0]
        server = cluster.servers["srv-0-0"]
        sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            self._prepare("blocker", "key:0", "x", sim.now + 1e-3)))
        reply = sim.run_until_event(client.node.call(
            "srv-0-0", "milana.prepare",
            self._prepare("loser", "key:0", "y", sim.now + 2e-3)))
        assert reply.vote == "ABORT"
        sim.run(until=sim.now + 0.1)
        assert server.node.handler_errors == 0
        # The aborted record became durable once its fsync landed.
        assert any(entry.kind == TXN_RECORD
                   and entry.payload.txn_id == "loser"
                   for entry in server.wal.durable_records())


def _shard_wipe(cluster, rng, start, duration):
    """Whole-shard amnesia crash with staggered restarts: every replica
    of shard0 loses its memory at once, so recovery can only come from
    the WALs. The deliberately lossy control (ack-before-fsync, slow
    fsyncs) must lose acked writes here."""
    plan = NemesisPlan(cluster, name="shard-wipe")
    shard = cluster.directory.shard("shard0")
    for index, node in enumerate(sorted(shard.replicas)):
        plan.crash(start, node)
        plan.restart(start + duration * (0.5 + 0.1 * index), node)
    return plan


class TestNemesisAcceptance:
    def test_crash_restart_scenario_passes_audit(self):
        """The PR's acceptance run: seeded crash of a shard primary
        mid-workload recovers through WAL replay + Algorithm 2 and the
        post-heal audit holds."""
        result = run_nemesis("crash-restart")
        assert result.passed, result.summary()
        assert result.metrics.committed > 0
        primary = result.cluster.directory.shard("shard0").primary
        assert result.cluster.servers[primary].wal.replays >= 1
        assert not result.audit.lost_writes
        assert not result.audit.stuck_prepared

    def test_whole_shard_wipe_durable_vs_lossy_control(self):
        """The A/B that proves the audit has teeth: the same whole-shard
        wipe passes with honest ack-after-fsync WALs and fails with the
        ack-before-fsync control (acked writes vanish)."""
        nemesis.SCENARIOS["shard-wipe"] = _shard_wipe
        try:
            durable = run_nemesis("shard-wipe")
            assert durable.passed, durable.summary()

            lossy = DurabilityConfig(
                sync_prepares=False, sync_decides=False,
                sync_semel=False, fsync_latency=20e-3)
            control = run_nemesis(
                "shard-wipe", config=nemesis_config(durability=lossy))
            assert not control.passed, (
                "ack-before-fsync control unexpectedly passed the "
                "audit:\n" + control.summary())
            assert control.audit.lost_writes
        finally:
            del nemesis.SCENARIOS["shard-wipe"]
