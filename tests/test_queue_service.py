"""Tests for the transactional FIFO queue service."""


from repro.harness.cluster import Cluster, ClusterConfig
from repro.services import TransactionalQueue


def make_cluster(num_clients=3, **overrides):
    defaults = dict(num_shards=2, replicas_per_shard=3,
                    num_clients=num_clients, backend="dram",
                    clock_preset="ptp-sw", seed=173, populate_keys=0)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestFifoSemantics:
    def test_enqueue_dequeue_order(self):
        cluster = make_cluster()
        queue = TransactionalQueue(cluster.clients[0], "jobs")
        sim = cluster.sim

        def work():
            for item in ("a", "b", "c"):
                index = yield queue.enqueue(item)
                assert index is not None
            out = []
            for _ in range(3):
                out.append((yield queue.dequeue()))
            empty = yield queue.dequeue()
            return out, empty

        out, empty = sim.run_until_event(sim.process(work()))
        assert out == ["a", "b", "c"]
        assert empty is None

    def test_size(self):
        cluster = make_cluster()
        queue = TransactionalQueue(cluster.clients[0], "jobs")
        sim = cluster.sim

        def work():
            assert (yield queue.size()) == 0
            yield queue.enqueue(1)
            yield queue.enqueue(2)
            assert (yield queue.size()) == 2
            yield queue.dequeue()
            return (yield queue.size())

        assert sim.run_until_event(sim.process(work())) == 1

    def test_queues_are_independent(self):
        cluster = make_cluster()
        q1 = TransactionalQueue(cluster.clients[0], "one")
        q2 = TransactionalQueue(cluster.clients[0], "two")
        sim = cluster.sim

        def work():
            yield q1.enqueue("only-in-one")
            from_two = yield q2.dequeue()
            from_one = yield q1.dequeue()
            return from_one, from_two

        from_one, from_two = sim.run_until_event(sim.process(work()))
        assert from_one == "only-in-one"
        assert from_two is None


class TestConcurrency:
    def test_exactly_once_delivery_with_racing_consumers(self):
        cluster = make_cluster(num_clients=4)
        producer_queue = TransactionalQueue(cluster.clients[0], "work")
        consumers = [TransactionalQueue(client, "work")
                     for client in cluster.clients[1:]]
        sim = cluster.sim
        delivered = []

        def produce():
            for i in range(24):
                index = yield producer_queue.enqueue(f"job-{i}")
                assert index is not None

        def consume(queue):
            misses = 0
            while misses < 8:
                item = yield queue.dequeue()
                if item is None:
                    misses += 1
                    yield sim.timeout(1e-3)
                else:
                    misses = 0
                    delivered.append(item)

        sim.run_until_event(sim.process(produce()))
        procs = [sim.process(consume(queue)) for queue in consumers]
        for proc in procs:
            sim.run_until_event(proc)
        assert sorted(delivered) == sorted(f"job-{i}" for i in range(24))
        assert len(delivered) == len(set(delivered)), \
            "an element was delivered twice"

    def test_concurrent_producers_lose_nothing(self):
        cluster = make_cluster(num_clients=3)
        queues = [TransactionalQueue(client, "inbox")
                  for client in cluster.clients]
        sim = cluster.sim

        def produce(queue, tag):
            for i in range(10):
                index = yield queue.enqueue(f"{tag}-{i}")
                assert index is not None

        procs = [sim.process(produce(queue, f"p{i}"))
                 for i, queue in enumerate(queues)]
        for proc in procs:
            sim.run_until_event(proc)

        def drain():
            items = []
            while True:
                item = yield queues[0].dequeue()
                if item is None:
                    return items
                items.append(item)

        items = sim.run_until_event(sim.process(drain()))
        assert len(items) == 30
        assert len(set(items)) == 30
