"""Tests for the global master: heartbeats, failure detection, automatic
failover."""

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import COMMITTED
from repro.semel import Master
from repro.wire import MasterLookup


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=1,
                    backend="dram", clock_preset="perfect", seed=97,
                    populate_keys=20, with_master=True)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestFailureDetection:
    def test_heartbeats_keep_servers_alive(self):
        cluster = make_cluster()
        cluster.sim.run(until=0.2)
        for server in cluster.servers:
            assert cluster.master.is_alive(server)
        assert cluster.master.failovers == []

    def test_silent_server_declared_dead(self):
        cluster = make_cluster()
        cluster.sim.run(until=0.1)
        cluster.fail_server("srv-0-2")  # a backup
        cluster.sim.run(until=0.3)
        assert not cluster.master.is_alive("srv-0-2")
        # Backups dying does not trigger failover.
        assert cluster.master.failovers == []
        assert cluster.directory.shard("shard0").primary == "srv-0-0"

    def test_recovered_server_marked_alive_again(self):
        cluster = make_cluster()
        cluster.sim.run(until=0.1)
        cluster.fail_server("srv-0-2")
        cluster.sim.run(until=0.3)
        assert not cluster.master.is_alive("srv-0-2")
        cluster.unpause_server("srv-0-2")
        cluster.sim.run(until=0.4)
        assert cluster.master.is_alive("srv-0-2")

    def test_validates_timeout_configuration(self):
        cluster = make_cluster(with_master=False)
        with pytest.raises(ValueError):
            Master(cluster.sim, cluster.network, cluster.directory,
                   cluster.servers, heartbeat_interval=0.05,
                   failure_timeout=0.04)


class TestAutoFailover:
    def _commit(self, cluster, client, key, value):
        def work():
            txn = client.begin()
            yield client.txn_get(txn, key)
            client.put(txn, key, value)
            return (yield client.commit(txn))

        return cluster.sim.run_until_event(cluster.sim.process(work()))

    def test_primary_death_triggers_promotion_and_recovery(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.sim.run(until=0.05)
        assert self._commit(cluster, client, "key:0", "gen1") == COMMITTED
        cluster.sim.run(until=cluster.sim.now + 0.02)

        cluster.fail_server("srv-0-0")
        cluster.sim.run(until=cluster.sim.now + 0.3)

        assert len(cluster.master.failovers) == 1
        _, shard, dead, successor = cluster.master.failovers[0]
        assert shard == "shard0"
        assert dead == "srv-0-0"
        assert successor in ("srv-0-1", "srv-0-2")
        assert cluster.directory.shard("shard0").primary == successor
        assert cluster.master.epochs["shard0"] == 1

        # Data survives and the shard serves again.
        def check():
            txn = client.begin()
            value = yield client.txn_get(txn, "key:0")
            yield client.commit(txn)
            return value

        assert cluster.sim.run_until_event(
            cluster.sim.process(check())) == "gen1"
        assert self._commit(cluster, client, "key:0", "gen2") == COMMITTED

    def test_no_failover_without_majority(self):
        cluster = make_cluster()
        cluster.sim.run(until=0.05)
        cluster.fail_server("srv-0-0")
        cluster.fail_server("srv-0-1")
        cluster.fail_server("srv-0-2")
        cluster.sim.run(until=cluster.sim.now + 0.3)
        assert cluster.master.failovers == []

    def test_cascading_failover(self):
        """Kill the new primary too: the master promotes the last one."""
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.sim.run(until=0.05)
        assert self._commit(cluster, client, "key:1", "v1") == COMMITTED
        cluster.sim.run(until=cluster.sim.now + 0.02)

        cluster.fail_server("srv-0-0")
        cluster.sim.run(until=cluster.sim.now + 0.3)
        assert len(cluster.master.failovers) == 1
        first_successor = cluster.master.failovers[0][3]

        # With only 2 of 3 replicas, killing the new primary leaves no
        # majority: no further failover may complete.
        cluster.fail_server(first_successor)
        cluster.sim.run(until=cluster.sim.now + 0.3)
        assert len(cluster.master.failovers) == 1

        # Bring the first dead server back: now a majority exists again
        # and the detector completes the second failover.
        cluster.unpause_server("srv-0-0")
        cluster.sim.run(until=cluster.sim.now + 0.5)
        assert len(cluster.master.failovers) == 2

    def test_multi_shard_independent_failover(self):
        cluster = make_cluster(num_shards=2, populate_keys=40)
        cluster.sim.run(until=0.05)
        primary0 = cluster.directory.shard("shard0").primary
        cluster.fail_server(primary0)
        cluster.sim.run(until=cluster.sim.now + 0.3)
        assert len(cluster.master.failovers) == 1
        assert cluster.master.epochs["shard0"] == 1
        assert cluster.master.epochs["shard1"] == 0


class TestLookupService:
    def test_lookup_single_key(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.sim.run(until=0.05)
        reply = cluster.sim.run_until_event(
            client.node.call("master", "master.lookup",
                             MasterLookup(key="key:0")))
        assert reply.shard == "shard0"
        assert reply.primary == "srv-0-0"
        assert reply.epoch == 0

    def test_lookup_full_map(self):
        cluster = make_cluster(num_shards=2, populate_keys=10)
        client = cluster.clients[0]
        cluster.sim.run(until=0.05)
        reply = cluster.sim.run_until_event(
            client.node.call("master", "master.lookup", MasterLookup()))
        assert set(reply.shards) == {"shard0", "shard1"}
        assert all(len(info["replicas"]) == 3
                   for info in reply.shards.values())

    def test_lookup_reflects_promotion(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.sim.run(until=0.05)
        cluster.fail_server("srv-0-0")
        cluster.sim.run(until=cluster.sim.now + 0.3)
        reply = cluster.sim.run_until_event(
            client.node.call("master", "master.lookup",
                             MasterLookup(key="key:0")))
        assert reply.primary != "srv-0-0"
        assert reply.epoch == 1
