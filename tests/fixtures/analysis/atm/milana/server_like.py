"""ATM fixture: seeded yield-point atomicity races for the golden test.

Not importable code — a miniature MILANA-shaped module whose only job
is to make ATM001/ATM002 fire at pinned locations (and stay quiet on
the safe variants).
"""


def validate(record, table):
    return bool(table)


class Coordinator:
    """Seeds ATM001: validate and record split across helpers with a
    replication yield in between."""

    def __init__(self, sim, net):
        self.sim = sim
        self.net = net
        self.queue = []
        self.key_states = {}
        self.txn_table = {}

    def prepare_daemon(self):
        while True:
            yield self.sim.timeout(0.1)
            for txn in list(self.queue):
                yield from self._prepare(txn)

    def _prepare(self, txn):
        if not self._validate_txn(txn):
            return
        yield from self._replicate(txn)  # suspension between the two
        self._record(txn)  # ATM001: records a stale validation

    def _validate_txn(self, txn):
        return validate(txn, self.key_states)

    def _replicate(self, txn):
        yield self.net.call("backup-1", "milana.replicate_txn", txn,
                            timeout=0.01)

    def _record(self, txn):
        self.txn_table[txn.txn_id] = txn


class LeaseTable:
    """Seeds ATM002: check-then-act on shared lease state across a
    yield, next to a safe re-checking variant."""

    def __init__(self, sim):
        self.sim = sim
        self.leases = {}

    def refresh_daemon(self):
        while True:
            yield self.sim.timeout(0.05)
            yield from self._renew_racy()
            yield from self._renew_safe()

    def _renew_racy(self):
        if "lease" not in self.leases:
            return
        yield self.sim.timeout(0.01)
        self.leases["lease"] = self.sim.now  # ATM002: guard went stale

    def _renew_safe(self):
        if "lease" not in self.leases:
            return
        yield self.sim.timeout(0.01)
        if "lease" not in self.leases:
            return  # re-checked after the yield: no race
        self.leases["lease"] = self.sim.now
