"""DET fixture: interprocedural wall-clock taint for the golden test.

``sample_latency`` reads the wall clock directly (DET001 on its own
line), ``jitter`` launders the value through one more hop, and
``Collector`` sinks it into server state and simulator scheduling —
the DET101 cases no single-module rule can see.
"""

import time


def sample_latency():
    return time.time() * 1e-3


def jitter():
    return sample_latency() + 1.0


def simulated_delay(sim):
    return sim.now + 1.0  # derived from simulated time: not tainted


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.started_at = 0.0
        self.deadline = 0.0

    def record_start(self):
        self.started_at = jitter()  # DET101: tainted value into state

    def wait(self):
        yield self.sim.timeout(jitter())  # DET101: tainted scheduling

    def plan(self):
        self.deadline = simulated_delay(self.sim)  # clean
