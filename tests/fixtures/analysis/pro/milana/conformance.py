"""PRO fixture: seeded protocol-conformance bugs for the golden test.

Uses the ``master`` namespace (two registry methods) so the
"namespace handled here" completeness check stays small and pinned.
"""

from repro.net.rpc import RpcError
from repro.wire import Ack, MasterLookupReply


class QuorumError(Exception):
    pass


class MasterLike:
    def __init__(self, sim, node):
        self.sim = sim
        self.node = node
        self.peers = ["peer-1", "peer-2"]
        # PRO001: namespace "master" is handled here, but master.lookup
        # never gets a handler.
        self.node.register("master.heartbeat", self._handle_heartbeat)
        # PRO001: duplicate registration.
        self.node.register("master.heartbeat", self._handle_heartbeat)
        # PRO001: no such method in the registry.
        self.node.register("master.bogus", self._handle_bogus)

    def _handle_heartbeat(self, request):
        yield from self._fanout(request)  # PRO004: QuorumError can leak
        return Ack()  # PRO002: registered reply is MasterHeartbeatReply

    def _handle_bogus(self, request):
        yield from ()
        return MasterLookupReply(primary="nobody")

    def _fanout(self, request):
        acks = 0
        for peer in self.peers:
            try:
                yield self.node.call(peer, "master.heartbeat", request,
                                     timeout=0.01)
                acks += 1
            except RpcError:
                continue
        if acks < 1:
            raise QuorumError("no heartbeat quorum")

    def poll_daemon(self):
        while True:
            yield self.sim.timeout(0.1)
            # PRO001: call to a method missing from the registry.
            # PRO003: no RpcError handling anywhere on this chain.
            yield self.node.call("m", "milana.nonexistent", None,
                                 timeout=0.01)
            yield from self._lookup_unprotected()

    def _lookup_unprotected(self):
        # PRO003: registered method, reachable only via the unprotected
        # daemon above.
        reply = yield self.node.call("m", "master.lookup", None,
                                     timeout=0.01)
        return reply

    def lookup_protected(self):
        try:
            reply = yield self.node.call("m", "master.lookup", None,
                                         timeout=0.01)
        except RpcError:
            return None
        return reply
