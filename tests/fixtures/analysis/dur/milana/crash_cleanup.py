"""DUR003 fixture: post-suspend ``finally`` cleanup that indexes
crash-wiped state with a bare ``del``. A crash-kill interrupt lands in
the finally block *after* ``crash`` replaced ``_inflight_puts``, so the
key is gone and the bare ``del`` raises KeyError into the interrupt.
"""


class Ack:
    pass


class FragileCleanupServer:
    """Seeds DUR003: bare del in a post-suspend finally block."""

    def __init__(self, sim, node, backend, wal):
        self.sim = sim
        self.node = node
        self.backend = backend
        self.wal = wal
        self._inflight_puts = {}
        self.node.register("semel.replicate", self._handle_replicate)

    def _handle_replicate(self, request):
        key = (request.key, request.version)
        done = self.sim.event()
        self._inflight_puts[key] = done
        try:
            yield self.backend.put(request.key, request.value,
                                   request.version)
            yield from self.wal.append_put(
                request.key, request.value, request.version, sync=True)
        finally:
            del self._inflight_puts[key]  # DUR003: key gone after crash
            done.succeed()
        return Ack()

    def crash(self):
        self._inflight_puts = {}
