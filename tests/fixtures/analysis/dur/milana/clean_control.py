"""Clean control: the same handler shapes done right — configured-sync
append before the ack, ``.pop(key, None)`` cleanup, payloads derived
from request fields, only replayable record kinds. Zero DUR findings.
"""


class SemelDeleteReply:
    def __init__(self, applied=False):
        self.applied = applied


class DurableDeleteServer:
    """Every DUR invariant held: fsync-before-ack, logged mutations,
    crash-safe cleanup, deterministic payloads, replayable kinds."""

    def __init__(self, sim, node, backend, wal):
        self.sim = sim
        self.node = node
        self.backend = backend
        self.wal = wal
        self._inflight_puts = {}
        self.node.register("semel.delete", self._handle_delete)

    def _handle_delete(self, request):
        done = self.sim.event()
        self._inflight_puts[request.key] = done
        try:
            yield self.backend.delete(request.key)
            yield from self.wal.append_delete(
                request.key, sync=self.wal.config.sync_semel)
            yield from self._replicate(request)
        finally:
            # pop, not del: the crash-kill interrupt may land here after
            # the table was replaced.
            self._inflight_puts.pop(request.key, None)
            done.succeed()
        return SemelDeleteReply(applied=True)

    def _replicate(self, request):
        yield self.node.call("backup-1", "semel.replicate", request,
                             timeout=0.01)

    def crash(self):
        self._inflight_puts = {}
