"""DUR004 fixture: a WAL record payload stamped with the wall clock
through a helper — the DET101 taint chain. Replay reconstructs a
different stamp than the run that crashed, so recovery diverges.
"""

import time


class Ack:
    pass


class TimestampingServer:
    """Seeds DUR004: the delete record carries a wall-clock stamp."""

    def __init__(self, sim, node, backend, wal):
        self.sim = sim
        self.node = node
        self.backend = backend
        self.wal = wal
        self.node.register("semel.delete", self._handle_delete)

    def _handle_delete(self, request):
        yield self.backend.delete(request.key)
        yield from self.wal.append(
            "semel.delete", (request.key, self._stamp()),
            sync=True)  # DUR004: payload tainted via _stamp
        return Ack()

    def _stamp(self):
        return time.time()
