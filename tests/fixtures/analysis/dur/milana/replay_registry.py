"""DUR005 fixture: a record kind appended with no replay arm. The
checkpoint records are durably written on every round and then silently
dropped by ``replay_wal``, whose dispatch only knows put/delete/txn.
"""

SEMEL_PUT = "semel.put"
SEMEL_DELETE = "semel.delete"
TXN_RECORD = "txn"
CHECKPOINT = "checkpoint"


class RestartableServer:
    """Seeds DUR005: appends CHECKPOINT, replays only put/delete/txn."""

    def __init__(self, sim, node, backend, wal):
        self.sim = sim
        self.node = node
        self.backend = backend
        self.wal = wal
        self.txn_table = {}

    def checkpoint_daemon(self):
        while True:
            yield self.sim.timeout(1.0)
            yield from self.wal.append(
                CHECKPOINT, dict(self.txn_table),
                sync=True)  # DUR005: no replay arm for this kind

    def replay_wal(self):
        for entry in self.wal.durable_records():
            if entry.kind == SEMEL_PUT:
                key, value, version = entry.payload
                yield self.backend.put(key, value, version)
            elif entry.kind == SEMEL_DELETE:
                (key,) = entry.payload
                yield self.backend.delete(key)
            elif entry.kind == TXN_RECORD:
                self.txn_table[entry.payload.txn_id] = entry.payload
