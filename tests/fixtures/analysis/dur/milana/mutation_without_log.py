"""DUR002 fixture: durable state mutated on a WAL-enabled path with no
append anywhere on the path — replay after an amnesia crash rebuilds a
transaction table that never heard of this record.
"""


class MilanaDecideReply:
    def __init__(self, status=None):
        self.status = status


class ForgetfulTable:
    """Seeds DUR002: the decide lands in the table but never in the log."""

    def __init__(self, sim, node, wal):
        self.sim = sim
        self.node = node
        self.wal = wal
        self.txn_table = {}
        self.node.register("milana.decide", self._handle_decide)

    def _handle_decide(self, request):
        record = request.record
        self.txn_table[record.txn_id] = record  # DUR002: never logged
        yield from self._replicate(record)
        return MilanaDecideReply(status="COMMITTED")

    def _replicate(self, record):
        yield self.node.call("backup-1", "milana.replicate_txn", record,
                             timeout=0.01)
