"""DUR001 fixture: the ack-before-fsync seam from the durability test.

Not importable code — a miniature SEMEL-shaped put handler that
hardcodes what the lossy ``sync_semel=False`` control configuration in
``tests/test_durability.py`` resolves to at the append site: the write
is applied and logged with ``sync=False``, the handler suspends on
replication (the crash window the nemesis A/B pair exercises), and the
reply claims the write was applied. A whole-shard crash inside that
window erases the WAL tail and the acked write with it.
"""


class SemelPutReply:
    def __init__(self, applied=False, duplicate=False):
        self.applied = applied
        self.duplicate = duplicate


class LossyPutServer:
    """Seeds DUR001: applied=True rides on a background fsync."""

    def __init__(self, sim, node, backend, wal):
        self.sim = sim
        self.node = node
        self.backend = backend
        self.wal = wal
        self.node.register("semel.put", self._handle_put)

    def _handle_put(self, request):
        yield self.backend.put(request.key, request.value,
                               request.version)
        yield from self.wal.append_put(
            request.key, request.value, request.version, sync=False)
        yield from self._replicate(request)
        return SemelPutReply(applied=True, duplicate=False)  # DUR001

    def _replicate(self, request):
        yield self.node.call("backup-1", "semel.replicate", request,
                             timeout=0.01)  # the lost-write crash window
