"""Seeded bug: the pre-PR-4 CTP commit-without-lock race, as a fixture.

Before PR 4 hardened the Cooperative Termination Protocol, a CTP
resolution validated a record (``status == PREPARED``), suspended to ask
the coordinator for the outcome, and then applied that outcome without
re-checking the record or taking the in-flight guard — so a decide that
landed inside the suspension window was applied a second time underneath
it. :class:`RacyCtpServer` reintroduces exactly that shape on top of
today's :class:`~repro.milana.server.MilanaServer` (whose own CTP daemon
is disabled), and ``run_scenario`` drives it into the race
deterministically:

* a coordinator stub prepares one transaction and then goes silent, so
  the primary's CTP daemon eventually picks the record up;
* the stub's ``milana.txn_outcome`` handler *spawns a late decide* at the
  primary and only then answers COMMITTED after a delay — landing the
  decide squarely inside the CTP suspension.

With ``racy=True`` the sanitizer must produce SAN001 (the CTP section's
guard on the transaction record went stale across the suspension) and
SAN002 witnesses (the re-apply has no happens-before edge to the decide's
apply; the exclusive ``txn-apply`` location reports the single-apply
invariant violation). With ``racy=False`` the same scenario runs against
the real server, whose CTP re-validates and takes the in-flight guard —
the specificity control that must stay witness-free.

simlint's ATM001/ATM002 flag this file statically (the sansim
reconciliation scope for the ``ctp-race`` workload is
``tests/fixtures/sansim``), so the reconciliation report can classify
those findings as confirmed-by-witness.
"""

from __future__ import annotations

from repro.milana.server import MilanaServer
from repro.milana.transaction import ABORTED, COMMITTED, PREPARED, \
    TransactionRecord
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.net.rpc import RpcError, RpcNode
from repro.semel.sharding import Directory
from repro.ftl.dram import DRAMBackend
from repro.sim.core import Simulator
from repro.sim.rng import SeededRng
from repro.wire import (MilanaDecide, MilanaPrepare, MilanaTxnStatus,
                        MilanaTxnStatusReply, TxnRecordWire)

__all__ = ["RacyCtpServer", "run_scenario", "TXN_ID"]

TXN_ID = "t-race"

#: The stub coordinator holds its txn_outcome answer this long after
#: spawning the late decide, keeping the decide (and its replication)
#: comfortably inside the racy CTP's suspension window.
REPLY_DELAY = 1.5e-3


class RacyCtpServer(MilanaServer):
    """A MILANA server whose CTP path lost its hardening.

    The base class's own daemon is disabled (``ctp_timeout=None``); this
    subclass runs the pre-PR-4 shape instead: validate, suspend on the
    coordinator query, apply — no re-check, no in-flight guard.
    """

    def __init__(self, sim, network, directory, name, shard_name, backend,
                 ctp_tick=2e-3, ctp_stale_after=3e-3):
        super().__init__(sim, network, directory, name, shard_name,
                         backend, ctp_timeout=None)
        self.ctp_tick = ctp_tick
        self.ctp_stale_after = ctp_stale_after
        sim.process(self.ctp_daemon())

    def ctp_daemon(self):
        """The pre-PR-4 resolution loop (racy on purpose)."""
        while True:
            yield self.sim.timeout(self.ctp_tick)
            if not self.is_primary:
                continue
            stale = [
                record for record in self.txn_table.values()
                if record.status == PREPARED
                and self.sim.now - record.prepared_at > self.ctp_stale_after
            ]
            for record in stale:
                try:
                    yield from self._run_ctp_racy(record)
                except RpcError:
                    continue

    def _run_ctp_racy(self, record):
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin_section("ctp", record.txn_id)
            tracer.on_read(("txn", self.name, record.txn_id))
            for key, _value in record.writes:
                tracer.on_read(("keystate", self.name, key))
        if not self._ctp_validate(record):
            return
        outcome = yield from self._ask_coordinator(record)
        if outcome is None:
            return
        # BUG (pre-PR-4): no status re-check and no _inflight_txn_ops
        # guard here — a decide that landed during _ask_coordinator's
        # suspension has already applied this outcome.
        self.ctp_resolutions += 1
        yield from self._apply_outcome(record, outcome)

    def _ctp_validate(self, record):
        return record.status == PREPARED

    def _ask_coordinator(self, record):
        try:
            reply = yield self.node.call(
                record.client_name, "milana.txn_outcome",
                MilanaTxnStatus(txn_id=record.txn_id),
                timeout=self.replication_timeout)
        except RpcError:
            return None
        if reply.status in (COMMITTED, ABORTED):
            return reply.status
        return None

    def _apply_outcome(self, record, outcome):
        tracer = self.sim.tracer
        if outcome == COMMITTED:
            version = record.commit_version_of
            visibles = []
            puts = []
            for key, value in record.writes:
                if version in self.backend.versions_of(key):
                    continue  # the racing decide already stored it
                visible = self.sim.event()
                visibles.append(visible)
                puts.append(self.backend.put(key, value, version,
                                             visible=visible))
            if visibles:
                yield self.sim.all_of(visibles)
            for key, _value in record.writes:
                self.key_states.mark_committed(key, version)
                self.key_states.clear_prepared(key, record.txn_id)
                if tracer is not None:
                    tracer.on_write(("keystate", self.name, key))
            if puts:
                yield self.sim.all_of(puts)
        else:
            for key, _value in record.writes:
                self.key_states.clear_prepared(key, record.txn_id)
                if tracer is not None:
                    tracer.on_write(("keystate", self.name, key))
        record.status = outcome
        self.txn_table[record.txn_id] = record
        if tracer is not None:
            tracer.on_write(("txn", self.name, record.txn_id))
            tracer.on_write(("txn-apply", self.name, record.txn_id),
                            exclusive=True)
        yield from self._replicate_txn_record(record)


def _coordinator(sim, network, primary_name):
    """The silent coordinator: answers outcome probes, never decides
    on its own — except that answering *spawns* a late decide first."""
    node = RpcNode(sim, network, "coord")

    def late_decide():
        try:
            yield node.call(primary_name, "milana.decide",
                            MilanaDecide(txn_id=TXN_ID, outcome=COMMITTED),
                            timeout=5e-3)
        except RpcError:
            pass

    def handle_txn_outcome(request):
        sim.process(late_decide())
        yield sim.timeout(REPLY_DELAY)
        return MilanaTxnStatusReply(status=COMMITTED)

    node.register("milana.txn_outcome", handle_txn_outcome)
    return node


def run_scenario(simulator_factory=None, racy=True, until=0.015):
    """One deterministic run of the race scenario.

    Returns the shard primary so callers can inspect its transaction
    table / counters. ``racy=False`` swaps in the real server (with a
    fast CTP timeout) as the specificity control.
    """
    sim = Simulator() if simulator_factory is None else simulator_factory()
    rng = SeededRng(7, "ctp-race")
    network = Network(sim, rng, latency=FixedLatency(50e-6))
    names = ["srv-0-0", "srv-0-1", "srv-0-2"]
    directory = Directory({"shard0": names})
    if racy:
        primary = RacyCtpServer(sim, network, directory, names[0],
                                "shard0", DRAMBackend(sim))
    else:
        primary = MilanaServer(sim, network, directory, names[0],
                               "shard0", DRAMBackend(sim),
                               ctp_timeout=6e-3)
    for name in names[1:]:
        MilanaServer(sim, network, directory, name, "shard0",
                     DRAMBackend(sim), ctp_timeout=None)
    coord = _coordinator(sim, network, names[0])

    def driver():
        record = TransactionRecord(
            txn_id=TXN_ID, client_id=7, client_name="coord",
            ts_commit=1e-3, reads=[],
            writes=[("alpha", "a-race"), ("beta", "b-race")],
            participants=["shard0"])
        yield coord.call(
            names[0], "milana.prepare",
            MilanaPrepare(record=TxnRecordWire.from_record(record)),
            timeout=5e-3)
        # ... and the coordinator goes silent: no decide is ever sent
        # proactively, so the primary's CTP daemon must resolve it.

    sim.process(driver())
    sim.run(until=until)
    return primary
