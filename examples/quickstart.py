#!/usr/bin/env python
"""Quickstart: stand up a MILANA/SEMEL cluster and run transactions.

Builds the paper's basic deployment — 2 shards x 3 replicas on the
multi-version flash FTL, clients synchronized with software-timestamped
PTP — then runs a read-modify-write transaction, a snapshot read-only
transaction validated locally at the client, and shows a write-write
conflict aborting one of two racing transactions.

Run:  python examples/quickstart.py
"""

from repro import ABORTED, COMMITTED, Cluster, ClusterConfig


def main():
    cluster = Cluster(ClusterConfig(
        num_shards=2,
        replicas_per_shard=3,
        num_clients=2,
        backend="mftl",          # the paper's unified multi-version FTL
        clock_preset="ptp-sw",   # 53.2 us mean pairwise skew (paper §5.2)
        populate_keys=100,
        seed=1,
    ))
    sim = cluster.sim
    alice, bob = cluster.clients

    # -- 1. a read-modify-write transaction --------------------------------
    def transfer():
        txn = alice.begin()
        balance = yield alice.txn_get(txn, "key:1")
        alice.put(txn, "key:1", f"{balance}+100")
        alice.put(txn, "key:2", "receipt")
        outcome = yield alice.commit(txn)
        return outcome

    outcome = sim.run_until_event(sim.process(transfer()))
    print(f"read-modify-write transaction: {outcome}")

    # -- 2. a read-only transaction, validated locally ---------------------
    def read_only():
        txn = bob.begin()
        v1 = yield bob.txn_get(txn, "key:1")
        v2 = yield bob.txn_get(txn, "key:2")
        sent_before = cluster.network.stats.messages_sent
        outcome = yield bob.commit(txn)     # zero network messages
        sent_after = cluster.network.stats.messages_sent
        return outcome, v1, v2, sent_after - sent_before

    sim.run(until=sim.now + 0.01)
    outcome, v1, v2, messages = sim.run_until_event(
        sim.process(read_only()))
    print(f"read-only transaction: {outcome}; key:1={v1!r} key:2={v2!r}")
    print(f"  commit messages on the wire: {messages} "
          "(client-local validation, paper section 4.3)")

    # -- 3. two racing writers: OCC aborts exactly one ---------------------
    def racer(client, tag, results):
        txn = client.begin()
        yield client.txn_get(txn, "key:7")
        client.put(txn, "key:7", tag)
        results[tag] = yield client.commit(txn)

    results = {}
    sim.process(racer(alice, "alice-wins?", results))
    sim.process(racer(bob, "bob-wins?", results))
    sim.run(until=sim.now + 0.05)
    print(f"write-write race outcomes: {results}")
    assert sorted(results.values()) == [ABORTED, COMMITTED]

    stats = cluster.total_stats()
    print(f"totals: {stats['committed']} committed, "
          f"{stats['aborted']} aborted, "
          f"mean latency {stats['mean_latency'] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
