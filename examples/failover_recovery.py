#!/usr/bin/env python
"""Failure injection: primary failover with Algorithm 2 recovery (§4.5).

Commits transactions through a 3-replica shard, then fail-stops the
primary, promotes a backup, and runs the recovery merge: the new primary
pulls the transaction logs from the surviving replicas, reconstructs the
transaction table and per-key state, waits out the old primary's read
lease, and resumes service — with every committed write intact.

Run:  python examples/failover_recovery.py
"""

from repro import COMMITTED, Cluster, ClusterConfig
from repro.milana import recover_primary


def main():
    cluster = Cluster(ClusterConfig(
        num_shards=1,
        replicas_per_shard=3,
        num_clients=1,
        backend="mftl",
        clock_preset="ptp-sw",
        populate_keys=50,
        seed=33,
    ))
    sim = cluster.sim
    client = cluster.clients[0]

    def commit_generation(tag, count):
        committed = 0
        for i in range(count):
            txn = client.begin()
            yield client.txn_get(txn, f"key:{i}")
            client.put(txn, f"key:{i}", f"{tag}-{i}")
            outcome = yield client.commit(txn)
            if outcome == COMMITTED:
                committed += 1
            yield sim.timeout(1e-3)
        return committed

    committed = sim.run_until_event(
        sim.process(commit_generation("pre-failover", 10)))
    print(f"committed {committed} transactions through primary "
          f"{cluster.directory.shard('shard0').primary}")
    sim.run(until=sim.now + 0.01)  # let replication laggards drain

    # -- fail the primary, promote a backup --------------------------------
    old_primary = cluster.directory.shard("shard0").primary
    cluster.fail_server(old_primary)
    cluster.directory.promote("shard0", "srv-0-1")
    print(f"crashed {old_primary}; promoting srv-0-1")

    new_primary = cluster.servers["srv-0-1"]
    sim.run_until_event(recover_primary(new_primary, lease_wait=30e-3))
    print(f"recovery complete at t={sim.now * 1e3:.1f} ms "
          f"(merged {len(new_primary.txn_table)} transaction records, "
          "lease wait observed)")

    # -- verify every committed write survived ------------------------------
    def audit():
        intact = 0
        for i in range(10):
            txn = client.begin()
            value = yield client.txn_get(txn, f"key:{i}")
            yield client.commit(txn)
            if value == f"pre-failover-{i}":
                intact += 1
        return intact

    intact = sim.run_until_event(sim.process(audit()))
    print(f"audit after failover: {intact}/10 committed writes intact")
    assert intact == 10

    # -- and the shard keeps serving new transactions ------------------------
    committed = sim.run_until_event(
        sim.process(commit_generation("post-failover", 5)))
    print(f"committed {committed} new transactions on the new primary")


if __name__ == "__main__":
    main()
