#!/usr/bin/env python
"""Clock-discipline study: how synchronization quality drives abort rates.

Sweeps the clock model from perfect time through DTP-class (~150 ns),
hardware PTP (~0.5 us), software PTP (~53 us, the paper's setup), to NTP
(~1.5 ms), holding the workload fixed — the essence of the paper's
Figure 7 plus the "what if clocks were even better?" extrapolation its
introduction motivates.

Run:  python examples/clock_skew_study.py
"""

from repro.clocks import mean_pairwise_skew
from repro.harness import ClusterConfig, run_retwis_on_cluster

PRESETS = ["perfect", "dtp", "ptp-hw", "ptp-sw", "ntp"]


def main():
    print("Abort rate vs clock discipline "
          "(1 shard x 3 replicas, 12 clients, DRAM backend, alpha=0.8)")
    print()
    header = (f"{'clock':>9} {'measured skew':>14} {'abort rate':>11} "
              f"{'txn/s':>9}")
    print(header)
    print("-" * len(header))
    for preset in PRESETS:
        config = ClusterConfig(
            num_shards=1,
            replicas_per_shard=3,
            num_clients=12,
            backend="dram",
            clock_preset=preset,
            populate_keys=4000,
            seed=29,
        )
        result = run_retwis_on_cluster(
            config, alpha=0.8, duration=0.25, warmup=0.05)
        clocks = [c.clock for c in result.cluster.clients]
        skew = mean_pairwise_skew(clocks)
        if skew >= 1e-3:
            skew_text = f"{skew * 1e3:.2f} ms"
        elif skew >= 1e-6:
            skew_text = f"{skew * 1e6:.1f} us"
        else:
            skew_text = f"{skew * 1e9:.0f} ns"
        print(f"{preset:>9} {skew_text:>14} "
              f"{result.abort_rate:>11.3f} "
              f"{result.throughput:>9.0f}")
    print()
    print("Expect: abort rates flat from perfect through hardware PTP "
          "(skew << write latency), a modest rise at software PTP, and a "
          "clear jump at NTP — the paper's case for precision time.")


if __name__ == "__main__":
    main()
