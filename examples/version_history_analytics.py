#!/usr/bin/env python
"""Multi-version analytics: time-travel reads over SEMEL history.

§3.1 motivates a tunable GC retention window — "keep all versions that
are less than 5 seconds old ... e.g., for read-only analytics workloads".
This example runs a sensor-style write stream, then:

1. reads the full version history of a key over a time range;
2. takes consistent point-in-time snapshots at several past timestamps;
3. shows the watermark advancing and garbage-collecting old versions,
   truncating the readable history exactly at the retention rule.

Run:  python examples/version_history_analytics.py
"""

from repro.clocks import PerfectClock
from repro.harness.cluster import Cluster, ClusterConfig
from repro.semel import SemelClient


def main():
    cluster = Cluster(ClusterConfig(
        num_shards=1,
        replicas_per_shard=3,
        num_clients=0,
        backend="mftl",
        populate_keys=10,
        seed=55,
    ))
    sim = cluster.sim
    client = SemelClient(sim, cluster.network, cluster.directory,
                         PerfectClock(sim), client_id=1)

    # -- 1. a sensor writes one reading every 10 ms -------------------------
    stamps = []

    def sensor():
        for i in range(12):
            version = yield client.put("sensor:temp", 20.0 + i * 0.5)
            stamps.append(version.timestamp)
            yield sim.timeout(0.01)

    sim.run_until_event(sim.process(sensor()))
    print(f"wrote {len(stamps)} readings over "
          f"{(stamps[-1] - stamps[0]) * 1e3:.0f} ms of simulated time")

    # -- 2. range query over the history ------------------------------------
    def range_query():
        history = yield client.get_history(
            "sensor:temp", stamps[3], stamps[8])
        return history

    history = sim.run_until_event(sim.process(range_query()))
    print(f"history[{stamps[3] * 1e3:.0f}ms .. {stamps[8] * 1e3:.0f}ms]: "
          + ", ".join(f"{value}" for _, value in history))

    # -- 3. consistent snapshots at past instants ---------------------------
    def snapshots():
        values = []
        for timestamp in (stamps[2], stamps[6], stamps[10]):
            result = yield client.get("sensor:temp", at=timestamp)
            values.append((timestamp, result[1]))
        return values

    for timestamp, value in sim.run_until_event(sim.process(snapshots())):
        print(f"snapshot at t={timestamp * 1e3:6.1f} ms -> {value}")

    # -- 4. the watermark trims history --------------------------------------
    # The client reports its progress; servers GC versions older than the
    # youngest one at or below the watermark.
    client.broadcast_watermark()
    sim.run(until=sim.now + 5e-3)

    def rewrite_and_requery():
        # One more write makes the engine apply the retention rule.
        yield client.put("sensor:temp", 99.9)
        history = yield client.get_history(
            "sensor:temp", 0.0, sim.now)
        return history

    trimmed = sim.run_until_event(sim.process(rewrite_and_requery()))
    primary = cluster.servers[cluster.directory.shard_of(
        "sensor:temp").primary]
    print(f"after watermark GC: {len(trimmed)} of 13 versions remain "
          f"(watermark={primary.backend.watermark * 1e3:.0f} ms); the "
          "newest pre-watermark version survives so snapshots at the "
          "watermark still work")
    assert len(trimmed) < 13


if __name__ == "__main__":
    main()
