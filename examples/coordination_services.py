#!/usr/bin/env python
"""Coordination services built on MILANA transactions (§7 future work).

The paper's conclusion lists "distributed lock services" among the
services its storage layer enables. This example runs two of them, both
implemented purely as transactional clients — no server-side changes:

1. a **distributed lock**: racing workers serialize a critical section,
   and a crashed holder's lease expires so the lock frees itself;
2. a **transactional FIFO queue**: concurrent producers and consumers
   with exactly-once delivery, conflicts resolved by OCC retries.

Run:  python examples/coordination_services.py
"""

from repro.harness.cluster import Cluster, ClusterConfig
from repro.services import DistributedLockService, TransactionalQueue


def main():
    cluster = Cluster(ClusterConfig(
        num_shards=2,
        replicas_per_shard=3,
        num_clients=5,
        backend="mftl",
        clock_preset="ptp-sw",
        populate_keys=0,
        seed=91,
    ))
    sim = cluster.sim

    # -- 1. the distributed lock ---------------------------------------------
    services = [DistributedLockService(client, ttl=0.2)
                for client in cluster.clients[:3]]
    section = {"depth": 0, "max_depth": 0, "entries": 0}

    def worker(service, rounds):
        done = 0
        while done < rounds:
            handle = yield service.acquire("deploy-lock")
            if handle is None:
                yield sim.timeout(2e-3)
                continue
            section["depth"] += 1
            section["max_depth"] = max(section["max_depth"],
                                       section["depth"])
            section["entries"] += 1
            yield sim.timeout(3e-3)            # critical section
            section["depth"] -= 1
            yield service.release(handle)
            done += 1

    procs = [sim.process(worker(service, 4)) for service in services]
    for proc in procs:
        sim.run_until_event(proc)
    print(f"lock: {section['entries']} critical sections, max "
          f"concurrency {section['max_depth']} (must be 1), "
          f"{sum(s.contentions for s in services)} contended attempts")
    assert section["max_depth"] == 1

    # -- 1b. a crashed holder's lease expires ---------------------------------
    crasher = DistributedLockService(cluster.clients[3], ttl=0.05)
    claimer = DistributedLockService(cluster.clients[4], ttl=0.5)

    def lease_demo():
        handle = yield crasher.acquire("fragile")
        assert handle is not None
        # The holder "crashes": no renewals. Wait out the lease.
        yield sim.timeout(0.08)
        takeover = yield claimer.acquire("fragile")
        return takeover

    takeover = sim.run_until_event(sim.process(lease_demo()))
    print(f"lease: dead holder's lock reclaimed by "
          f"{takeover.owner} after TTL expiry")

    # -- 2. the transactional queue -------------------------------------------
    producer = TransactionalQueue(cluster.clients[0], "jobs")
    consumers = [TransactionalQueue(client, "jobs")
                 for client in cluster.clients[1:4]]
    delivered = []

    def produce():
        for i in range(18):
            index = yield producer.enqueue(f"job-{i}")
            assert index is not None

    def consume(queue):
        misses = 0
        while misses < 6:
            item = yield queue.dequeue()
            if item is None:
                misses += 1
                yield sim.timeout(1e-3)
            else:
                misses = 0
                delivered.append(item)

    sim.run_until_event(sim.process(produce()))
    procs = [sim.process(consume(queue)) for queue in consumers]
    for proc in procs:
        sim.run_until_event(proc)
    retries = sum(queue.retries for queue in consumers)
    print(f"queue: {len(delivered)} jobs delivered exactly once across "
          f"{len(consumers)} racing consumers ({retries} OCC retries)")
    assert sorted(delivered) == sorted(f"job-{i}" for i in range(18))


if __name__ == "__main__":
    main()
