#!/usr/bin/env python
"""Chaos engineering: rolling failures under an active master.

Runs the Retwis workload while a ChaosMonkey crashes and revives random
backups (never breaking a quorum) and, midway, fail-stops a shard
primary outright. The heartbeat-driven master detects the silence,
promotes a backup, runs the Algorithm 2 recovery merge, and the workload
rides through — this is §3's "global master" plus §4.5's recovery story,
end to end.

Run:  python examples/chaos_with_master.py
"""

from repro.harness.chaos import ChaosMonkey
from repro.harness.cluster import Cluster, ClusterConfig
from repro.sim import SeededRng
from repro.workloads import RetwisInstance


def main():
    cluster = Cluster(ClusterConfig(
        num_shards=2,
        replicas_per_shard=3,
        num_clients=6,
        backend="dram",
        clock_preset="ptp-sw",
        populate_keys=500,
        seed=77,
        with_master=True,          # heartbeats + automatic failover
    ))
    sim = cluster.sim

    monkey = ChaosMonkey(cluster, SeededRng(78),
                         interval=30e-3, downtime=15e-3)
    monkey.start()

    instances = [
        RetwisInstance(sim, client, cluster.populated_keys,
                       cluster.rng.substream(f"chaos{i}"), alpha=0.6)
        for i, client in enumerate(cluster.clients)
    ]
    procs = [instance.run(duration=0.6) for instance in instances]

    # Midway: kill a primary for real (the monkey only takes backups).
    def assassin():
        yield sim.timeout(0.25)
        primary = cluster.directory.shard("shard0").primary
        print(f"t={sim.now * 1e3:5.0f} ms  killing PRIMARY {primary}")
        cluster.fail_server(primary)

    sim.process(assassin())
    for proc in procs:
        sim.run_until_event(proc)
    sim.run(until=sim.now + 0.2)   # let the failover settle

    committed = sum(i.stats.committed for i in instances)
    aborted = sum(i.stats.aborted for i in instances)
    print(f"backup blips injected : {len(monkey.kills)}")
    print(f"primary failovers     : {len(cluster.master.failovers)}")
    for at, shard, dead, successor in cluster.master.failovers:
        print(f"  t={at * 1e3:5.0f} ms  {shard}: {dead} -> {successor} "
              f"(epoch {cluster.master.epochs[shard]})")
    print(f"transactions committed: {committed}  aborted: {aborted}")
    assert cluster.master.failovers, "the master should have failed over"
    assert committed > 500

    # The promoted primary serves reads of pre-failover data.
    client = cluster.clients[0]

    def audit():
        txn = client.begin()
        value = yield client.txn_get(txn, "key:0")
        yield client.commit(txn)
        return value

    value = sim.run_until_event(sim.process(audit()))
    print(f"post-failover read of key:0 -> {value!r}")


if __name__ == "__main__":
    main()
