#!/usr/bin/env python
"""Retwis: the paper's social-network workload end to end.

Runs the Table 2 transaction mix (add user / follow / post tweet / get
timeline) from many concurrent clients against a sharded, replicated
MILANA deployment, at two contention levels, and reports the metrics the
paper's figures are built from: committed-transaction throughput, abort
rate, mean latency, and the local-validation share.

Run:  python examples/retwis_social_network.py
"""

from repro.harness import ClusterConfig, run_retwis_on_cluster


def run_one(alpha: float, local_validation: bool):
    config = ClusterConfig(
        num_shards=3,
        replicas_per_shard=3,
        num_clients=12,
        backend="mftl",
        clock_preset="ptp-sw",
        populate_keys=2000,
        local_validation=local_validation,
        seed=21,
    )
    result = run_retwis_on_cluster(
        config, alpha=alpha, duration=0.25, warmup=0.05)
    return result


def main():
    print("Retwis over MILANA: 3 shards x 3 replicas, 12 clients, "
          "MFTL storage, PTP clocks")
    print()
    header = (f"{'alpha':>6} {'local-val':>10} {'txn/s':>10} "
              f"{'abort rate':>11} {'latency ms':>11}")
    print(header)
    print("-" * len(header))
    for alpha in (0.4, 0.8):
        for lv in (True, False):
            result = run_one(alpha, lv)
            metrics = result.metrics
            print(f"{alpha:>6} {('on' if lv else 'off'):>10} "
                  f"{metrics.throughput:>10.0f} "
                  f"{metrics.abort_rate:>11.3f} "
                  f"{metrics.mean_latency * 1e3:>11.2f}")
    print()
    print("Expect: local validation raises throughput and cuts latency "
          "(paper: +55% / -35%); higher contention raises abort rates.")


if __name__ == "__main__":
    main()
